//! Streaming sessions: long-lived [`StreamingProfile`]s owned by the
//! service, fed by append requests. Each session wraps
//! [`mdmp_core::streaming`] — FP64 sessions therefore match the batch
//! result exactly no matter how arrivals are chunked.
//!
//! # Locking model
//!
//! The manager keeps a table of `Arc<Mutex<StreamingProfile>>`. The table
//! mutex is held only long enough to fetch (or insert/remove) a session's
//! `Arc` — never across an append. The append itself runs under the
//! *session's own* mutex, so appends to distinct sessions proceed in
//! parallel while same-session appends serialize in arrival order. Closing
//! a session removes its `Arc` from the table; an append already holding a
//! clone of that `Arc` finishes on the detached session and its result is
//! simply discarded with it. The `vendor/interleave` model in
//! `tests/interleave.rs` explores this protocol exhaustively.

use crate::sync;
use mdmp_core::{MatrixProfile, MdmpConfig, StreamingProfile};
use mdmp_data::MultiDimSeries;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Session identifier.
pub type SessionId = u64;

/// Which series an append extends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendSide {
    /// Extend the query series (adds profile columns).
    Query,
    /// Extend the reference series (can improve every column).
    Reference,
}

impl std::str::FromStr for AppendSide {
    type Err = String;

    fn from_str(s: &str) -> Result<AppendSide, String> {
        match s.to_ascii_lowercase().as_str() {
            "query" => Ok(AppendSide::Query),
            "reference" => Ok(AppendSide::Reference),
            other => Err(format!("unknown side '{other}' (query, reference)")),
        }
    }
}

/// A shape snapshot of one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionSummary {
    /// Session id.
    pub id: SessionId,
    /// Profile columns (query segments).
    pub n_query: usize,
    /// Reference segments.
    pub n_reference: usize,
    /// Dimensionality.
    pub dims: usize,
}

/// What one append did — the summary plus the accounting delta the service
/// layer turns into streaming metrics.
#[derive(Debug, Clone, Copy)]
pub struct AppendReport {
    /// Post-append session shape.
    pub summary: SessionSummary,
    /// Segments the append added to the profile (delta tile extent on the
    /// grown side).
    pub appended_segments: u64,
    /// Statistics segments served from the session's side cache.
    pub reused_segments: u64,
    /// Statistics segments computed fresh for the delta window.
    pub fresh_segments: u64,
    /// Whether the append reused a cached precalculation unit.
    pub reused_precalc: bool,
    /// Wall seconds the append took.
    pub seconds: f64,
}

/// The service's open streaming sessions.
#[derive(Debug, Default)]
pub struct SessionManager {
    next_id: AtomicU64,
    sessions: Mutex<BTreeMap<SessionId, Arc<Mutex<StreamingProfile>>>>,
}

impl SessionManager {
    /// An empty manager.
    pub fn new() -> SessionManager {
        SessionManager::default()
    }

    /// Fetch a session's handle without holding the table lock afterwards.
    fn session(&self, id: SessionId) -> Result<Arc<Mutex<StreamingProfile>>, String> {
        sync::lock(&self.sessions)
            .get(&id)
            .cloned()
            .ok_or_else(|| format!("unknown session {id}"))
    }

    /// Open a session over initial series; the first batch is computed
    /// immediately.
    pub fn open(
        &self,
        reference: MultiDimSeries,
        query: MultiDimSeries,
        cfg: MdmpConfig,
    ) -> Result<SessionSummary, String> {
        let sp = StreamingProfile::new(reference, query, cfg).map_err(|e| e.to_string())?;
        // relaxed-ok: id allocation only needs uniqueness; the table
        // insert below is ordered by its mutex.
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let summary = SessionSummary {
            id,
            n_query: sp.n_query(),
            n_reference: sp.n_reference(),
            dims: sp.profile().dims(),
        };
        sync::lock(&self.sessions).insert(id, Arc::new(Mutex::new(sp)));
        Ok(summary)
    }

    /// Append per-dimension samples to one side of a session. Holds only
    /// the target session's lock while the delta tile runs, so appends to
    /// other sessions are not blocked.
    pub fn append(
        &self,
        id: SessionId,
        side: AppendSide,
        samples: &[Vec<f64>],
    ) -> Result<AppendReport, String> {
        let session = self.session(id)?;
        let started = Instant::now();
        let mut sp = sync::lock(&session);
        let before = sp.stats();
        let result = match side {
            AppendSide::Query => sp.append_query(samples),
            AppendSide::Reference => sp.append_reference(samples),
        };
        result.map_err(|e| e.to_string())?;
        let after = sp.stats();
        Ok(AppendReport {
            summary: SessionSummary {
                id,
                n_query: sp.n_query(),
                n_reference: sp.n_reference(),
                dims: sp.profile().dims(),
            },
            appended_segments: after.segments_extended - before.segments_extended,
            reused_segments: after.segments_reused - before.segments_reused,
            fresh_segments: after.segments_fresh - before.segments_fresh,
            reused_precalc: after.incremental_appends > before.incremental_appends,
            seconds: started.elapsed().as_secs_f64(),
        })
    }

    /// The session's current profile (cloned snapshot).
    pub fn profile(&self, id: SessionId) -> Option<MatrixProfile> {
        let session = self.session(id).ok()?;
        let sp = sync::lock(&session);
        Some(sp.profile().clone())
    }

    /// The session's shape.
    pub fn summary(&self, id: SessionId) -> Option<SessionSummary> {
        let session = self.session(id).ok()?;
        let sp = sync::lock(&session);
        Some(SessionSummary {
            id,
            n_query: sp.n_query(),
            n_reference: sp.n_reference(),
            dims: sp.profile().dims(),
        })
    }

    /// Close a session; returns whether it existed. An append running
    /// concurrently finishes on the detached session state.
    pub fn close(&self, id: SessionId) -> bool {
        sync::lock(&self.sessions).remove(&id).is_some()
    }

    /// Open sessions right now.
    pub fn len(&self) -> usize {
        sync::lock(&self.sessions).len()
    }

    /// Whether no session is open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdmp_precision::PrecisionMode;

    fn wave(offset: usize, n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| ((t + offset) as f64 * 0.31).sin() + 0.01 * (t + offset) as f64)
            .collect()
    }

    #[test]
    fn open_append_close_lifecycle() {
        let mgr = SessionManager::new();
        let cfg = MdmpConfig::new(8, PrecisionMode::Fp64);
        let s = mgr
            .open(
                MultiDimSeries::univariate(wave(0, 96)),
                MultiDimSeries::univariate(wave(30, 64)),
                cfg,
            )
            .unwrap();
        assert_eq!(s.n_query, 57);
        let r2 = mgr
            .append(s.id, AppendSide::Query, &[wave(94, 16)])
            .unwrap();
        assert_eq!(r2.summary.n_query, 57 + 16);
        assert_eq!(r2.appended_segments, 16);
        assert!(r2.reused_precalc);
        assert!(r2.reused_segments > 0);
        let r3 = mgr
            .append(s.id, AppendSide::Reference, &[wave(200, 12)])
            .unwrap();
        assert_eq!(r3.summary.n_reference, s.n_reference + 12);
        assert!(mgr.profile(s.id).is_some());
        assert!(mgr.close(s.id));
        assert!(!mgr.close(s.id));
        assert!(mgr.is_empty());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mgr = SessionManager::new();
        let cfg = MdmpConfig::new(8, PrecisionMode::Fp64);
        let s = mgr
            .open(
                MultiDimSeries::univariate(wave(0, 64)),
                MultiDimSeries::univariate(wave(9, 64)),
                cfg,
            )
            .unwrap();
        let err = mgr
            .append(s.id, AppendSide::Query, &[wave(0, 8), wave(1, 8)])
            .unwrap_err();
        assert!(err.contains("dimension"));
        assert!(mgr.append(999, AppendSide::Query, &[wave(0, 8)]).is_err());
    }

    #[test]
    fn concurrent_appends_to_distinct_sessions_make_progress() {
        let mgr = Arc::new(SessionManager::new());
        let cfg = MdmpConfig::new(8, PrecisionMode::Fp64);
        let mut ids = Vec::new();
        for i in 0..4 {
            let s = mgr
                .open(
                    MultiDimSeries::univariate(wave(i * 11, 80)),
                    MultiDimSeries::univariate(wave(i * 7 + 3, 48)),
                    cfg.clone(),
                )
                .unwrap();
            ids.push(s.id);
        }
        std::thread::scope(|scope| {
            for &id in &ids {
                let mgr = Arc::clone(&mgr);
                scope.spawn(move || {
                    for round in 0..8 {
                        mgr.append(id, AppendSide::Query, &[wave(round * 5, 4)])
                            .unwrap();
                    }
                });
            }
        });
        for &id in &ids {
            let s = mgr.summary(id).unwrap();
            assert_eq!(s.n_query, (48 - 8 + 1) + 8 * 4);
        }
    }

    #[test]
    fn close_during_append_leaves_manager_consistent() {
        let mgr = Arc::new(SessionManager::new());
        let cfg = MdmpConfig::new(8, PrecisionMode::Fp64);
        let s = mgr
            .open(
                MultiDimSeries::univariate(wave(0, 96)),
                MultiDimSeries::univariate(wave(13, 64)),
                cfg,
            )
            .unwrap();
        std::thread::scope(|scope| {
            let appender = {
                let mgr = Arc::clone(&mgr);
                scope.spawn(move || {
                    // Races against close: either outcome (applied to the
                    // detached session, or unknown-session error) is fine —
                    // the manager itself must stay consistent.
                    let _ = mgr.append(s.id, AppendSide::Query, &[wave(90, 8)]);
                })
            };
            let closer = {
                let mgr = Arc::clone(&mgr);
                scope.spawn(move || mgr.close(s.id))
            };
            appender.join().unwrap();
            let _ = closer.join().unwrap();
        });
        assert!(mgr.is_empty());
        assert!(mgr.summary(s.id).is_none());
    }
}

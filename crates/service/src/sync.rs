//! Poison-tolerant lock helpers for request-path modules.
//!
//! `Mutex::lock().unwrap()` turns one worker's panic into a cascading
//! panic in every thread that later touches the same lock — exactly what
//! the service's panic-hygiene rule (mdmp-analyze R4) forbids on request
//! paths. These helpers recover the guard from a poisoned lock instead:
//! every structure the service guards this way (job registry, session
//! table, precalc cache maps, flight state) is kept consistent by
//! updating it in a single statement or by publish-on-drop guards, so the
//! data is valid even if the panicking thread died mid-request. Higher
//! layers then surface the original panic as a typed job failure.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// Lock `m`, recovering the guard if a previous holder panicked.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`], recovering the guard on poison.
pub(crate) fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`], recovering the guard on poison.
pub(crate) fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    cv.wait_timeout(guard, dur)
        .unwrap_or_else(PoisonError::into_inner)
}

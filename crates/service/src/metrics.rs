//! The service's observability surface: lock-free counters and gauges,
//! log-bucketed latency histograms, per-kernel-class device seconds folded
//! in from each job's [`mdmp_gpu_sim::CostLedger`], and two export forms —
//! a structured [`ServiceStats`] snapshot and a Prometheus-style text page.

use mdmp_gpu_sim::CostLedger;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

/// A monotone counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        // relaxed-ok: a counter is an independent tally; readers only
        // need eventual totals, never cross-metric ordering.
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed); // relaxed-ok: see inc
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed) // relaxed-ok: see inc
    }
}

/// An up/down gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Increment by one.
    pub fn inc(&self) {
        // relaxed-ok: a gauge is an independent reading; readers only
        // need eventual values, never cross-metric ordering.
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrement by one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed); // relaxed-ok: see inc
    }

    /// Add a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed); // relaxed-ok: see inc
    }

    /// Set to an absolute value.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed); // relaxed-ok: see inc
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed) // relaxed-ok: see inc
    }
}

/// An atomically accumulated f64 (bit-packed in an `AtomicU64`).
#[derive(Debug, Default)]
pub struct FloatSum(AtomicU64);

impl FloatSum {
    /// Add a value.
    pub fn add(&self, v: f64) {
        // relaxed-ok: the CAS loop already makes each accumulation
        // atomic; the sum is a reporting value with no ordering ties.
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match self
                .0
                // relaxed-ok: see the load above.
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed)) // relaxed-ok: see add
    }
}

/// A byte tally labeled by (encoding, op) — the wire layer's traffic
/// accounting. A `BTreeMap` keeps the rendered label order deterministic.
#[derive(Debug, Default)]
pub struct LabeledBytes {
    map: Mutex<BTreeMap<(&'static str, &'static str), u64>>,
}

impl LabeledBytes {
    /// Add `bytes` under the (encoding, op) label pair.
    pub fn add(&self, encoding: &'static str, op: &'static str, bytes: u64) {
        let mut map = self.map.lock().unwrap();
        *map.entry((encoding, op)).or_insert(0) += bytes;
    }

    /// Total bytes across all labels.
    pub fn total(&self) -> u64 {
        self.map.lock().unwrap().values().sum()
    }

    /// All (encoding, op, bytes) rows in deterministic label order.
    pub fn rows(&self) -> Vec<(&'static str, &'static str, u64)> {
        self.map
            .lock()
            .unwrap()
            .iter()
            .map(|(&(enc, op), &bytes)| (enc, op, bytes))
            .collect()
    }

    fn render(&self, out: &mut String, name: &str) {
        out.push_str(&format!("# TYPE {name} counter\n"));
        for (enc, op, bytes) in self.rows() {
            out.push_str(&format!(
                "{name}{{encoding=\"{enc}\",op=\"{op}\"}} {bytes}\n"
            ));
        }
    }
}

/// Histogram bucket upper bounds in seconds: 1-3 steps per decade from 1 µs
/// to 100 s, plus +Inf.
pub const LATENCY_BOUNDS: [f64; 17] = [
    1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0,
    100.0,
];

/// A fixed-bucket latency histogram (cumulative, Prometheus-style).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    sum: FloatSum,
    count: Counter,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: (0..LATENCY_BOUNDS.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            sum: FloatSum::default(),
            count: Counter::default(),
        }
    }
}

impl Histogram {
    /// Record one observation in seconds.
    pub fn observe(&self, seconds: f64) {
        for (i, bound) in LATENCY_BOUNDS.iter().enumerate() {
            if seconds <= *bound {
                // relaxed-ok: bucket tallies are reporting-only; the page
                // renderer tolerates a mid-observation snapshot.
                self.buckets[i].fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
        self.sum.add(seconds);
        self.count.inc();
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.get()
    }

    /// Sum of observations in seconds.
    pub fn sum(&self) -> f64 {
        self.sum.get()
    }

    /// Mean observation, or 0 with no data.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    fn render(&self, out: &mut String, name: &str) {
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cumulative = 0u64;
        for (i, bound) in LATENCY_BOUNDS.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed); // relaxed-ok: see observe
            out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
        }
        out.push_str(&format!(
            "{name}_bucket{{le=\"+Inf\"}} {}\n{name}_sum {}\n{name}_count {}\n",
            self.count(),
            self.sum(),
            self.count()
        ));
    }
}

/// All metrics of a running service.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    /// Jobs accepted into the queue.
    pub jobs_submitted: Counter,
    /// Jobs rejected by admission control (queue full).
    pub jobs_rejected: Counter,
    /// Jobs that finished successfully.
    pub jobs_completed: Counter,
    /// Jobs that exhausted their retries.
    pub jobs_failed: Counter,
    /// Jobs cancelled before execution.
    pub jobs_cancelled: Counter,
    /// Retry attempts across all jobs.
    pub jobs_retried: Counter,
    /// Jobs waiting in the queue right now.
    pub queue_depth: Gauge,
    /// Jobs executing right now.
    pub jobs_running: Gauge,
    /// Devices currently leased from the pool.
    pub devices_leased: Gauge,
    /// Precalc cache lookups that hit.
    pub cache_hits: Counter,
    /// Precalc cache lookups that missed.
    pub cache_misses: Counter,
    /// Precalc cache entries evicted by the byte budget.
    pub cache_evictions: Counter,
    /// Bytes currently held by the precalc cache.
    pub cache_bytes: Gauge,
    /// Concurrent precalc misses coalesced by the cache's single-flight
    /// path (followers that waited instead of recomputing).
    pub single_flight_waits: Counter,
    /// Host worker threads used by the most recent run.
    pub host_workers: Gauge,
    /// Tiles executed on reused (already-allocated) plane buffers.
    pub buffer_pool_reuses: Counter,
    /// Fresh plane-buffer allocations (at most one per host worker per
    /// run).
    pub buffer_pool_allocs: Counter,
    /// Tile attempts that failed and were retried inside runs (fault
    /// injection or genuine kernel failures).
    pub tile_retries: Counter,
    /// Whether the most recent run used the fused per-row pipeline (1) or
    /// the three-kernel pipeline (0).
    pub fused_rows_enabled: Gauge,
    /// Host dispatches eliminated by the fused row pipeline, accumulated
    /// over all runs (two per reference row when fusion is on).
    pub eliminated_dispatches: Counter,
    /// MMA accumulator chunk width of the most recent run (0 when the run
    /// used a vector mode instead of the simulated tensor cores).
    pub tc_chunk_k: Gauge,
    /// Pool dispatches served entirely by already-running persistent-pool
    /// threads, accumulated over all runs.
    pub pool_thread_reuses: Counter,
    /// Result planes rejected by the NaN/Inf/bound validation gate.
    pub plane_validation_failures: Counter,
    /// Simulated devices quarantined by the health ledger across all runs.
    pub devices_quarantined: Counter,
    /// Client connections dropped mid-job by an injected fault plan.
    pub connection_drops_injected: Counter,
    /// `tile_exec` requests served for a cluster coordinator.
    pub tile_exec_requests: Counter,
    /// Tiles executed on behalf of a cluster coordinator.
    pub tiles_served: Counter,
    /// `tile_exec` requests that failed (bad spec or exhausted retries).
    pub tile_exec_failures: Counter,
    /// Streaming sessions opened.
    pub stream_opens: Counter,
    /// Streaming appends applied.
    pub stream_appends: Counter,
    /// Streaming appends rejected (bad shape, unknown session, or tile
    /// failure).
    pub stream_append_failures: Counter,
    /// Appends that reused a cached per-session precalculation unit.
    pub stream_precalc_reuses: Counter,
    /// Statistics segments served from session side caches instead of
    /// recomputed.
    pub stream_segments_reused: Counter,
    /// Statistics segments computed fresh for append delta windows.
    pub stream_segments_fresh: Counter,
    /// Streaming sessions open right now.
    pub stream_sessions_open: Gauge,
    /// Wall time per streaming append — its mean is the amortized append
    /// cost.
    pub stream_append_seconds: Histogram,
    /// Bytes written to client sockets, labeled by encoding and op.
    pub wire_bytes_sent: LabeledBytes,
    /// Bytes read from client sockets, labeled by encoding and op.
    pub wire_bytes_received: LabeledBytes,
    /// Connections currently upgraded to the binary frame protocol.
    pub wire_binary_sessions: Gauge,
    /// Binary frames rejected for checksum/decode/framing failures.
    pub wire_frame_errors: Counter,
    /// Queue wait (submit → start) per job.
    pub queue_wait: Histogram,
    /// Execution time (start → finish) per job.
    pub run_seconds: Histogram,
    /// Modelled device seconds per kernel class, accumulated over all jobs.
    kernel_seconds: Mutex<BTreeMap<&'static str, f64>>,
    /// Busy seconds per host-worker slot, accumulated over all runs.
    worker_busy_seconds: Mutex<Vec<f64>>,
}

impl MetricsRegistry {
    /// Fold a finished job's per-kernel-class device seconds into the
    /// running totals.
    pub fn absorb_ledger(&self, ledger: &CostLedger) {
        let mut map = self.kernel_seconds.lock().unwrap();
        for (class, entry) in ledger.rows() {
            *map.entry(class.label()).or_insert(0.0) += entry.seconds;
        }
    }

    /// Per-kernel-class device seconds accumulated so far.
    pub fn kernel_seconds(&self) -> BTreeMap<&'static str, f64> {
        self.kernel_seconds.lock().unwrap().clone()
    }

    /// Fold one run's per-worker busy seconds into the per-slot totals
    /// (the vector grows to the largest worker count seen).
    pub fn absorb_worker_busy(&self, busy: &[f64]) {
        let mut slots = self.worker_busy_seconds.lock().unwrap();
        if slots.len() < busy.len() {
            slots.resize(busy.len(), 0.0);
        }
        for (slot, b) in busy.iter().enumerate() {
            slots[slot] += b;
        }
    }

    /// Busy seconds accumulated per host-worker slot.
    pub fn worker_busy_seconds(&self) -> Vec<f64> {
        self.worker_busy_seconds.lock().unwrap().clone()
    }

    /// Cache hit rate in [0, 1] (0 with no lookups).
    pub fn cache_hit_rate(&self) -> f64 {
        let hits = self.cache_hits.get();
        let total = hits + self.cache_misses.get();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Render the Prometheus-style text exposition page.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let counters: [(&str, &Counter); 28] = [
            ("mdmp_jobs_submitted_total", &self.jobs_submitted),
            ("mdmp_jobs_rejected_total", &self.jobs_rejected),
            ("mdmp_jobs_completed_total", &self.jobs_completed),
            ("mdmp_jobs_failed_total", &self.jobs_failed),
            ("mdmp_jobs_cancelled_total", &self.jobs_cancelled),
            ("mdmp_jobs_retried_total", &self.jobs_retried),
            ("mdmp_precalc_cache_hits_total", &self.cache_hits),
            ("mdmp_precalc_cache_misses_total", &self.cache_misses),
            ("mdmp_precalc_cache_evictions_total", &self.cache_evictions),
            (
                "mdmp_precalc_single_flight_waits_total",
                &self.single_flight_waits,
            ),
            ("mdmp_buffer_pool_reuses_total", &self.buffer_pool_reuses),
            ("mdmp_buffer_pool_allocs_total", &self.buffer_pool_allocs),
            ("mdmp_tile_retries_total", &self.tile_retries),
            (
                "mdmp_eliminated_dispatches_total",
                &self.eliminated_dispatches,
            ),
            ("mdmp_pool_thread_reuses_total", &self.pool_thread_reuses),
            (
                "mdmp_plane_validation_failures_total",
                &self.plane_validation_failures,
            ),
            ("mdmp_device_quarantined", &self.devices_quarantined),
            (
                "mdmp_connection_drops_injected_total",
                &self.connection_drops_injected,
            ),
            ("mdmp_tile_exec_requests_total", &self.tile_exec_requests),
            ("mdmp_tiles_served_total", &self.tiles_served),
            ("mdmp_tile_exec_failures_total", &self.tile_exec_failures),
            ("mdmp_stream_opens_total", &self.stream_opens),
            ("mdmp_stream_appends_total", &self.stream_appends),
            (
                "mdmp_stream_append_failures_total",
                &self.stream_append_failures,
            ),
            (
                "mdmp_stream_precalc_reuses_total",
                &self.stream_precalc_reuses,
            ),
            (
                "mdmp_stream_segments_reused_total",
                &self.stream_segments_reused,
            ),
            (
                "mdmp_stream_segments_fresh_total",
                &self.stream_segments_fresh,
            ),
            ("mdmp_wire_frame_errors_total", &self.wire_frame_errors),
        ];
        for (name, c) in counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.get()));
        }
        let gauges: [(&str, &Gauge); 9] = [
            ("mdmp_queue_depth", &self.queue_depth),
            ("mdmp_jobs_running", &self.jobs_running),
            ("mdmp_devices_leased", &self.devices_leased),
            ("mdmp_precalc_cache_bytes", &self.cache_bytes),
            ("mdmp_host_workers", &self.host_workers),
            ("mdmp_fused_rows_enabled", &self.fused_rows_enabled),
            ("mdmp_tc_chunk_k", &self.tc_chunk_k),
            ("mdmp_stream_sessions_open", &self.stream_sessions_open),
            ("mdmp_wire_binary_sessions", &self.wire_binary_sessions),
        ];
        for (name, g) in gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.get()));
        }
        self.wire_bytes_sent
            .render(&mut out, "mdmp_wire_bytes_sent_total");
        self.wire_bytes_received
            .render(&mut out, "mdmp_wire_bytes_received_total");
        out.push_str("# TYPE mdmp_host_worker_busy_seconds_total counter\n");
        for (slot, busy) in self.worker_busy_seconds().into_iter().enumerate() {
            out.push_str(&format!(
                "mdmp_host_worker_busy_seconds_total{{worker=\"{slot}\"}} {busy}\n"
            ));
        }
        self.queue_wait
            .render(&mut out, "mdmp_job_queue_wait_seconds");
        self.run_seconds.render(&mut out, "mdmp_job_run_seconds");
        self.stream_append_seconds
            .render(&mut out, "mdmp_stream_append_seconds");
        out.push_str("# TYPE mdmp_kernel_seconds_total counter\n");
        for (label, seconds) in self.kernel_seconds() {
            out.push_str(&format!(
                "mdmp_kernel_seconds_total{{class=\"{label}\"}} {seconds}\n"
            ));
        }
        out
    }

    /// A structured snapshot of the registry.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            jobs_submitted: self.jobs_submitted.get(),
            jobs_rejected: self.jobs_rejected.get(),
            jobs_completed: self.jobs_completed.get(),
            jobs_failed: self.jobs_failed.get(),
            jobs_cancelled: self.jobs_cancelled.get(),
            jobs_retried: self.jobs_retried.get(),
            queue_depth: self.queue_depth.get().max(0) as u64,
            jobs_running: self.jobs_running.get().max(0) as u64,
            devices_leased: self.devices_leased.get().max(0) as u64,
            precalc_cache_hits: self.cache_hits.get(),
            precalc_cache_misses: self.cache_misses.get(),
            precalc_cache_evictions: self.cache_evictions.get(),
            precalc_cache_bytes: self.cache_bytes.get().max(0) as u64,
            precalc_cache_hit_rate: self.cache_hit_rate(),
            precalc_single_flight_waits: self.single_flight_waits.get(),
            host_workers: self.host_workers.get().max(0) as u64,
            buffer_pool_reuses: self.buffer_pool_reuses.get(),
            buffer_pool_allocs: self.buffer_pool_allocs.get(),
            tile_retries: self.tile_retries.get(),
            fused_rows_enabled: self.fused_rows_enabled.get() != 0,
            eliminated_dispatches: self.eliminated_dispatches.get(),
            tc_chunk_k: self.tc_chunk_k.get().max(0) as u64,
            pool_thread_reuses: self.pool_thread_reuses.get(),
            plane_validation_failures: self.plane_validation_failures.get(),
            devices_quarantined: self.devices_quarantined.get(),
            connection_drops_injected: self.connection_drops_injected.get(),
            tile_exec_requests: self.tile_exec_requests.get(),
            tiles_served: self.tiles_served.get(),
            tile_exec_failures: self.tile_exec_failures.get(),
            stream_opens: self.stream_opens.get(),
            stream_appends: self.stream_appends.get(),
            stream_append_failures: self.stream_append_failures.get(),
            stream_precalc_reuses: self.stream_precalc_reuses.get(),
            stream_segments_reused: self.stream_segments_reused.get(),
            stream_segments_fresh: self.stream_segments_fresh.get(),
            stream_sessions_open: self.stream_sessions_open.get().max(0) as u64,
            wire_bytes_sent: self.wire_bytes_sent.total(),
            wire_bytes_received: self.wire_bytes_received.total(),
            wire_binary_sessions: self.wire_binary_sessions.get().max(0) as u64,
            wire_frame_errors: self.wire_frame_errors.get(),
            mean_stream_append_seconds: self.stream_append_seconds.mean(),
            worker_busy_seconds: self.worker_busy_seconds(),
            mean_queue_wait_seconds: self.queue_wait.mean(),
            mean_run_seconds: self.run_seconds.mean(),
            kernel_seconds: self
                .kernel_seconds()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        }
    }
}

/// A point-in-time snapshot of the service's metrics, exposed both
/// in-process and over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Jobs accepted into the queue.
    pub jobs_submitted: u64,
    /// Jobs rejected by admission control.
    pub jobs_rejected: u64,
    /// Jobs completed successfully.
    pub jobs_completed: u64,
    /// Jobs failed after retries.
    pub jobs_failed: u64,
    /// Jobs cancelled.
    pub jobs_cancelled: u64,
    /// Retry attempts.
    pub jobs_retried: u64,
    /// Current queue depth.
    pub queue_depth: u64,
    /// Currently running jobs.
    pub jobs_running: u64,
    /// Currently leased devices.
    pub devices_leased: u64,
    /// Precalc cache hits.
    pub precalc_cache_hits: u64,
    /// Precalc cache misses.
    pub precalc_cache_misses: u64,
    /// Precalc cache evictions.
    pub precalc_cache_evictions: u64,
    /// Precalc cache size in bytes.
    pub precalc_cache_bytes: u64,
    /// Hit rate in [0, 1].
    pub precalc_cache_hit_rate: f64,
    /// Concurrent misses coalesced by the cache's single-flight path.
    pub precalc_single_flight_waits: u64,
    /// Host worker threads used by the most recent run.
    pub host_workers: u64,
    /// Tiles executed on reused plane buffers.
    pub buffer_pool_reuses: u64,
    /// Fresh plane-buffer allocations.
    pub buffer_pool_allocs: u64,
    /// Tile attempts retried inside runs.
    pub tile_retries: u64,
    /// Whether the most recent run used the fused per-row pipeline.
    pub fused_rows_enabled: bool,
    /// Host dispatches eliminated by the fused row pipeline across runs.
    pub eliminated_dispatches: u64,
    /// MMA accumulator chunk width of the most recent run (0 = vector
    /// mode).
    pub tc_chunk_k: u64,
    /// Pool dispatches served by already-running persistent-pool threads.
    pub pool_thread_reuses: u64,
    /// Result planes rejected by the validation gate.
    pub plane_validation_failures: u64,
    /// Devices quarantined by the health ledger.
    pub devices_quarantined: u64,
    /// Connections dropped mid-job by injected fault plans.
    pub connection_drops_injected: u64,
    /// `tile_exec` requests served for a cluster coordinator.
    pub tile_exec_requests: u64,
    /// Tiles executed on behalf of a cluster coordinator.
    pub tiles_served: u64,
    /// `tile_exec` requests that failed.
    pub tile_exec_failures: u64,
    /// Streaming sessions opened.
    pub stream_opens: u64,
    /// Streaming appends applied.
    pub stream_appends: u64,
    /// Streaming appends rejected.
    pub stream_append_failures: u64,
    /// Appends that reused a cached per-session precalculation unit.
    pub stream_precalc_reuses: u64,
    /// Statistics segments served from session side caches.
    pub stream_segments_reused: u64,
    /// Statistics segments computed fresh for append delta windows.
    pub stream_segments_fresh: u64,
    /// Streaming sessions open right now.
    pub stream_sessions_open: u64,
    /// Bytes written to client sockets across both wire encodings.
    pub wire_bytes_sent: u64,
    /// Bytes read from client sockets across both wire encodings.
    pub wire_bytes_received: u64,
    /// Connections currently upgraded to the binary frame protocol.
    pub wire_binary_sessions: u64,
    /// Binary frames rejected for checksum/decode/framing failures.
    pub wire_frame_errors: u64,
    /// Mean streaming append wall time — the amortized append cost.
    pub mean_stream_append_seconds: f64,
    /// Busy seconds accumulated per host-worker slot.
    pub worker_busy_seconds: Vec<f64>,
    /// Mean queue wait in seconds.
    pub mean_queue_wait_seconds: f64,
    /// Mean job execution time in seconds.
    pub mean_run_seconds: f64,
    /// Modelled device seconds per kernel class.
    pub kernel_seconds: Vec<(String, f64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_accumulate() {
        let h = Histogram::default();
        h.observe(2e-6);
        h.observe(5e-4);
        h.observe(50.0);
        h.observe(1e9); // beyond the last bound: counted, no bucket
        assert_eq!(h.count(), 4);
        assert!(h.sum() > 50.0);
        let mut text = String::new();
        h.render(&mut text, "t");
        assert!(text.contains("t_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("t_count 4"));
    }

    #[test]
    fn float_sum_accumulates_under_contention() {
        let s = FloatSum::default();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        s.add(0.5);
                    }
                });
            }
        });
        assert_eq!(s.get(), 2000.0);
    }

    #[test]
    fn stats_snapshot_and_text_agree() {
        let m = MetricsRegistry::default();
        m.jobs_submitted.add(3);
        m.jobs_rejected.inc();
        m.cache_hits.add(2);
        m.cache_misses.add(2);
        m.queue_depth.set(1);
        m.stream_opens.inc();
        m.stream_appends.add(4);
        m.stream_sessions_open.set(2);
        m.stream_append_seconds.observe(0.02);
        let stats = m.stats();
        assert_eq!(stats.jobs_submitted, 3);
        assert_eq!(stats.precalc_cache_hit_rate, 0.5);
        assert_eq!(stats.stream_appends, 4);
        assert_eq!(stats.stream_sessions_open, 2);
        assert!(stats.mean_stream_append_seconds > 0.0);
        let text = m.render_text();
        assert!(text.contains("mdmp_jobs_submitted_total 3"));
        assert!(text.contains("mdmp_jobs_rejected_total 1"));
        assert!(text.contains("mdmp_queue_depth 1"));
        assert!(text.contains("mdmp_stream_appends_total 4"));
        assert!(text.contains("mdmp_stream_sessions_open 2"));
        assert!(text.contains("mdmp_stream_append_seconds_count 1"));
    }
}

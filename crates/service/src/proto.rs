//! A minimal JSON value, parser and writer for the service's JSON-lines
//! protocol — hand-rolled because the build environment carries no serde.
//!
//! Supported: the full JSON grammar minus `\u` surrogate pairs (a lone
//! `\uXXXX` escape is decoded as the corresponding scalar when valid).
//! Numbers are f64, which covers every value the protocol exchanges (job
//! ids stay below 2^53).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number value.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as u64 (numeric, non-negative, integral).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as bool, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parse a JSON document (must consume the whole input).
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                    write!(f, "{}", *n as i64)
                } else if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    // JSON has no Inf/NaN; the protocol encodes them as null.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("unknown escape '\\{}'", other as char)),
                    }
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::obj(vec![
            ("op", Json::str("submit")),
            ("n", Json::num(4096.0)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            (
                "data",
                Json::Arr(vec![Json::num(1.0), Json::num(-2.5), Json::num(3e-4)]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\\n\\\"b\" : [ 1 , 2.5 ] , \"c\" : null } ").unwrap();
        assert_eq!(v.get("a\n\"b").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("c"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"abc").is_err());
    }

    #[test]
    fn integers_render_without_exponent() {
        assert_eq!(Json::num(7.0).to_string(), "7");
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn unicode_escape_decodes() {
        let v = Json::parse("\"\\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("é"));
    }
}

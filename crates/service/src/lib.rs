//! `mdmp-service`: a concurrent matrix-profile job service on top of
//! `mdmp-core` and `mdmp-gpu-sim`.
//!
//! The service turns the one-shot driver into a long-running system:
//!
//! - **Scheduler** ([`Service`]): a bounded submission queue with
//!   admission control — a full queue *rejects* with
//!   [`SubmitError::QueueFull`] rather than buffering unboundedly —
//!   priority classes with FIFO order inside each, the
//!   `queued → running → done | failed | cancelled` lifecycle, and capped
//!   exponential-backoff retries.
//! - **Worker pool**: threads that lease simulated GPUs from a shared
//!   [`DevicePool`] per job and return them after.
//! - **Precalc cache** ([`PrecalcCache`]): per-tile precalculation blocks
//!   keyed by (series fingerprints, window `m`, precalc precision, tile
//!   count). A repeated query skips the `precalculation` kernel entirely;
//!   results are bit-identical because every reduced format embeds exactly
//!   in f64.
//! - **Streaming sessions** ([`SessionManager`]): long-lived incremental
//!   profiles over `mdmp_core::streaming`.
//! - **Metrics** ([`MetricsRegistry`]): counters, gauges and latency
//!   histograms, exposed as a structured [`ServiceStats`] snapshot and a
//!   Prometheus-style text page.
//! - **TCP front end** ([`serve`]): a JSON-lines protocol over
//!   `std::net`, one request/response object per line, upgradable
//!   per-connection to the checksummed binary frame protocol in
//!   [`wire`] for bulk plane payloads.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cache;
pub mod job;
pub mod metrics;
pub mod pool;
pub mod proto;
pub mod queue;
pub mod scheduler;
pub mod server;
pub mod session;
pub(crate) mod sync;
pub mod wire;

pub use cache::{series_fingerprint, CacheKey, CacheStats, PrecalcCache};
pub use job::{JobId, JobInput, JobOutcome, JobSpec, JobState, JobStatus, Priority};
pub use metrics::{MetricsRegistry, ServiceStats};
pub use pool::DevicePool;
pub use proto::Json;
pub use queue::{JobQueue, SubmitError};
pub use scheduler::{Service, ServiceConfig};
pub use server::{
    decode_index_plane_hex, decode_plane_hex, encode_index_plane_hex, encode_plane_hex,
    parse_job_spec, request, serve, Server,
};
pub use session::{AppendReport, AppendSide, SessionId, SessionManager, SessionSummary};
pub use wire::{
    narrowest_width, wire_preference, Chunk, FrameCodec, Message, WireConn, WireError,
    WirePreference,
};

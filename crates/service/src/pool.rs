//! The shared device pool: a fixed set of simulated GPUs that workers
//! lease per job. A lease blocks until enough devices are free, assembles
//! them into a [`GpuSystem`] via [`GpuSystem::from_devices`], and returns
//! them with [`GpuSystem::into_devices`] when the job finishes.

use mdmp_gpu_sim::{DeviceSpec, GpuSystem, SimDevice};
use std::sync::{Condvar, Mutex};

/// A pool of identical simulated devices.
#[derive(Debug)]
pub struct DevicePool {
    free: Mutex<Vec<SimDevice>>,
    available: Condvar,
    total: usize,
}

impl DevicePool {
    /// A pool of `n` devices of the given spec.
    pub fn new(spec: DeviceSpec, n: usize) -> DevicePool {
        assert!(n > 0, "pool needs at least one device");
        DevicePool {
            free: Mutex::new((0..n).map(|_| SimDevice::new(spec.clone())).collect()),
            available: Condvar::new(),
            total: n,
        }
    }

    /// Total devices the pool owns.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Devices currently free.
    pub fn available(&self) -> usize {
        self.free.lock().unwrap().len()
    }

    /// Lease `n` devices as a [`GpuSystem`], blocking until they are free.
    ///
    /// Panics if `n` exceeds the pool size (a lease that could never be
    /// satisfied) — callers validate at submission time.
    pub fn lease(&self, n: usize) -> GpuSystem {
        assert!(
            n >= 1 && n <= self.total,
            "lease of {n} devices from a pool of {}",
            self.total
        );
        let mut free = self.free.lock().unwrap();
        while free.len() < n {
            free = self.available.wait(free).unwrap();
        }
        let split_at = free.len() - n;
        let leased = free.split_off(split_at);
        GpuSystem::from_devices(leased)
    }

    /// Return a leased system's devices to the pool.
    pub fn release(&self, system: GpuSystem) {
        let mut devices = system.into_devices();
        let mut free = self.free.lock().unwrap();
        free.append(&mut devices);
        drop(free);
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lease_and_release_round_trip() {
        let pool = DevicePool::new(DeviceSpec::a100(), 3);
        let sys = pool.lease(2);
        assert_eq!(sys.device_count(), 2);
        assert_eq!(pool.available(), 1);
        pool.release(sys);
        assert_eq!(pool.available(), 3);
    }

    #[test]
    fn lease_blocks_until_devices_return() {
        let pool = Arc::new(DevicePool::new(DeviceSpec::a100(), 1));
        let sys = pool.lease(1);
        let pool2 = Arc::clone(&pool);
        let waiter = std::thread::spawn(move || {
            let sys = pool2.lease(1);
            pool2.release(sys);
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(!waiter.is_finished(), "lease must block while empty");
        pool.release(sys);
        waiter.join().unwrap();
        assert_eq!(pool.available(), 1);
    }

    #[test]
    #[should_panic(expected = "lease of 5 devices")]
    fn oversized_lease_panics() {
        let pool = DevicePool::new(DeviceSpec::a100(), 2);
        let _ = pool.lease(5);
    }
}

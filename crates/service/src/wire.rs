//! The binary wire protocol (DESIGN.md §15): length-prefixed, CRC-checked
//! frames negotiated per-connection on top of the JSON-lines handshake.
//!
//! JSON-lines remains the handshake and the fallback — a client sends a
//! `wire_upgrade` request as an ordinary JSON line, and only after the
//! server's `ok` reply do both sides switch to frames, so old peers keep
//! working untouched. Each frame is:
//!
//! ```text
//! offset  size  field
//! 0       2     magic  b"MW"
//! 2       1     version (1)
//! 3       1     kind (1 = message envelope)
//! 4       4     payload length, u32 LE (checksum excluded)
//! 8       n     payload
//! 8+n     4     CRC32 (IEEE) of the payload, u32 LE
//! ```
//!
//! The payload is an **envelope**: a JSON object (the op and its scalar
//! fields, exactly the JSON-lines vocabulary) followed by zero or more
//! **chunks** carrying the bulk planes that used to be ASCII-encoded:
//!
//! ```text
//! json_len u32 LE | json utf-8 | chunk_count u16 LE | chunks…
//! chunk: width u8 | count u32 LE | byte_len u32 LE | data
//! ```
//!
//! Width tags 8/4/2 are float planes as raw little-endian `f64`/`f32`/
//! [`Half`] bit patterns; tag 0 is an index plane as delta + zigzag
//! LEB128 varints. Float planes are narrowed only when every element
//! **bit-exactly** survives the round trip (`to_bits` compared after
//! widening back to `f64`), scanned per chunk — so FP64 planes ship at
//! 8 B, FP32/Mixed/FP16C/TC planes at 4 B and FP16 planes at 2 B per
//! element with no mode-specific trust involved, and a plane holding a
//! non-canonical NaN simply stays at 8 B.
//!
//! Error containment: a checksum or envelope-decode failure is
//! [`WireError::Corrupt`] — the length prefix kept the stream aligned, so
//! the server answers with a typed error frame and the connection
//! continues. A broken header (bad magic/version/kind or an oversized
//! length prefix) is [`WireError::Desync`]: framing is lost, the server
//! answers once and closes, staying up for other connections.
//! `MDMP_WIRE=json` ([`wire_preference`]) disables the upgrade entirely.

use crate::proto::Json;
use mdmp_precision::Half;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::Duration;

/// First two bytes of every frame.
pub const WIRE_MAGIC: [u8; 2] = *b"MW";
/// Protocol version carried in the frame header and the `wire_upgrade`
/// negotiation.
pub const WIRE_VERSION: u8 = 1;
/// The only frame kind of version 1: a message envelope.
pub const FRAME_KIND_MESSAGE: u8 = 1;
/// Ceiling on a frame's payload length; a larger length prefix can only
/// be garbage (or hostile) and is treated as lost framing.
pub const MAX_FRAME_BYTES: usize = 256 << 20;

/// Chunk width tag for delta+varint index planes.
const TAG_INDEX: u8 = 0;

const CRC32_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC32 (IEEE 802.3 polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// One bulk payload riding in a frame alongside the envelope JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum Chunk {
    /// A float plane (bit-exact `f64` values, however narrow the wire
    /// form was).
    F64(Vec<f64>),
    /// An index plane.
    I64(Vec<i64>),
}

impl Chunk {
    /// Elements in the chunk.
    pub fn len(&self) -> usize {
        match self {
            Chunk::F64(v) => v.len(),
            Chunk::I64(v) => v.len(),
        }
    }

    /// Whether the chunk is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The float plane, if this is one.
    pub fn into_f64(self) -> Option<Vec<f64>> {
        match self {
            Chunk::F64(v) => Some(v),
            Chunk::I64(_) => None,
        }
    }

    /// The index plane, if this is one.
    pub fn into_i64(self) -> Option<Vec<i64>> {
        match self {
            Chunk::I64(v) => Some(v),
            Chunk::F64(_) => None,
        }
    }
}

/// A decoded frame: the envelope JSON plus its chunks. On a JSON-lines
/// connection the same type carries a bare object with no chunks, so both
/// transports share one request/response surface.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// The op and its scalar fields.
    pub json: Json,
    /// Bulk planes, referenced from the JSON by chunk index.
    pub chunks: Vec<Chunk>,
}

impl Message {
    /// A chunkless message (any request/response that fits in JSON).
    pub fn json(json: Json) -> Message {
        Message {
            json,
            chunks: Vec::new(),
        }
    }
}

/// Why a wire operation failed.
#[derive(Debug)]
pub enum WireError {
    /// Transport failure (connect, read, write, timeout, EOF mid-frame).
    /// The connection is unusable.
    Io(std::io::Error),
    /// Framing is lost: bad magic/version/kind or an oversized length
    /// prefix. The peer cannot resynchronize; close after a typed error.
    Desync(String),
    /// The frame boundary was intact but its content failed the checksum
    /// or envelope decode. The connection can continue.
    Corrupt(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io: {e}"),
            WireError::Desync(e) => write!(f, "framing lost: {e}"),
            WireError::Corrupt(e) => write!(f, "corrupt frame: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

/// The client-side transport choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WirePreference {
    /// Attempt the `wire_upgrade` negotiation; fall back to JSON lines if
    /// the server declines (old peer).
    Auto,
    /// JSON lines only — the `MDMP_WIRE=json` escape hatch.
    Json,
}

/// The process-wide transport preference: `MDMP_WIRE=json` forces the
/// JSON-lines fallback, anything else (including unset) negotiates.
pub fn wire_preference() -> WirePreference {
    match std::env::var("MDMP_WIRE") {
        Ok(v) if v.eq_ignore_ascii_case("json") => WirePreference::Json,
        _ => WirePreference::Auto,
    }
}

fn zigzag(d: i64) -> u64 {
    ((d as u64) << 1) ^ ((d >> 63) as u64)
}

fn unzigzag(zz: u64) -> i64 {
    ((zz >> 1) as i64) ^ -((zz & 1) as i64)
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn take_varint(bytes: &[u8], at: &mut usize) -> Result<u64, String> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = bytes.get(*at) else {
            return Err("varint runs past the chunk".into());
        };
        *at += 1;
        if shift >= 64 {
            return Err("varint longer than 64 bits".into());
        }
        // At shift 63 only the low bit of the payload fits; higher bits
        // would be silently shifted out, decoding a wrong value.
        if shift == 63 && byte & 0x7E != 0 {
            return Err("varint longer than 64 bits".into());
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// The narrowest element width (2, 4 or 8 bytes) at which every value of
/// `plane` survives the wire round trip **bit-exactly**.
///
/// The check is per element and unconditional: a value is eligible for
/// width 2 iff `Half::from_f64(v).to_f64()` reproduces its exact bit
/// pattern, and for width 4 iff `(v as f32) as f64` does. Half ⊂ f32 ⊂
/// f64 exactly, so the scan only ever escalates. This is why narrow
/// planes are safe by construction: FP64 planes fail both tests and ship
/// at 8 B; FP32-valued planes (FP32/Mixed/FP16C and the TC modes, plus
/// the `+Inf` unset sentinel) pass the f32 test; FP16-valued planes pass
/// the Half test; and any value the round trips don't reproduce exactly
/// — a NaN whose `as`-cast payload comes back different, a subnormal —
/// silently stays at 8 B rather than trusting the precision mode's
/// label. The codec decodes with the same `Half`/`f32` conversions the
/// scan probes with, so a passed probe is a guaranteed round trip.
pub fn narrowest_width(plane: &[f64]) -> u8 {
    let mut width = 2u8;
    for &v in plane {
        let bits = v.to_bits();
        if width == 2 && Half::from_f64(v).to_f64().to_bits() != bits {
            width = 4;
        }
        if width == 4 && ((v as f32) as f64).to_bits() != bits {
            return 8;
        }
    }
    width
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn take_u8(bytes: &[u8], at: &mut usize) -> Result<u8, String> {
    let Some(&b) = bytes.get(*at) else {
        return Err("payload truncated (u8)".into());
    };
    *at += 1;
    Ok(b)
}

fn take_u16(bytes: &[u8], at: &mut usize) -> Result<u16, String> {
    let end = at.checked_add(2).ok_or("payload offset overflow")?;
    let Some(slice) = bytes.get(*at..end) else {
        return Err("payload truncated (u16)".into());
    };
    *at = end;
    let mut b = [0u8; 2];
    b.copy_from_slice(slice);
    Ok(u16::from_le_bytes(b))
}

fn take_u32(bytes: &[u8], at: &mut usize) -> Result<u32, String> {
    let end = at.checked_add(4).ok_or("payload offset overflow")?;
    let Some(slice) = bytes.get(*at..end) else {
        return Err("payload truncated (u32)".into());
    };
    *at = end;
    let mut b = [0u8; 4];
    b.copy_from_slice(slice);
    Ok(u32::from_le_bytes(b))
}

fn take_slice<'a>(bytes: &'a [u8], at: &mut usize, len: usize) -> Result<&'a [u8], String> {
    let end = at.checked_add(len).ok_or("payload offset overflow")?;
    let Some(slice) = bytes.get(*at..end) else {
        return Err(format!("payload truncated ({len}-byte slice)"));
    };
    *at = end;
    Ok(slice)
}

fn encode_chunk(out: &mut Vec<u8>, chunk: &Chunk, narrow: bool) -> Result<(), String> {
    let count =
        u32::try_from(chunk.len()).map_err(|_| "chunk longer than u32 elements".to_string())?;
    match chunk {
        Chunk::F64(plane) => {
            let width = if narrow { narrowest_width(plane) } else { 8 };
            let byte_len = u64::from(count)
                .checked_mul(u64::from(width))
                .and_then(|b| u32::try_from(b).ok())
                .ok_or_else(|| "chunk longer than u32 bytes".to_string())?;
            out.push(width);
            push_u32(out, count);
            push_u32(out, byte_len);
            match width {
                2 => {
                    for &v in plane {
                        out.extend_from_slice(&Half::from_f64(v).to_bits().to_le_bytes());
                    }
                }
                4 => {
                    for &v in plane {
                        out.extend_from_slice(&(v as f32).to_bits().to_le_bytes());
                    }
                }
                _ => {
                    for &v in plane {
                        out.extend_from_slice(&v.to_bits().to_le_bytes());
                    }
                }
            }
        }
        Chunk::I64(plane) => {
            out.push(TAG_INDEX);
            push_u32(out, count);
            let len_at = out.len();
            push_u32(out, 0);
            let mut prev = 0i64;
            for &x in plane {
                push_varint(out, zigzag(x.wrapping_sub(prev)));
                prev = x;
            }
            let byte_len = u32::try_from(out.len() - len_at - 4)
                .map_err(|_| "index chunk longer than u32 bytes".to_string())?;
            let bytes = byte_len.to_le_bytes();
            for (i, b) in bytes.iter().enumerate() {
                if let Some(slot) = out.get_mut(len_at + i) {
                    *slot = *b;
                }
            }
        }
    }
    Ok(())
}

fn decode_chunk(tag: u8, count: usize, data: &[u8]) -> Result<Chunk, String> {
    match tag {
        TAG_INDEX => {
            let mut plane = Vec::with_capacity(count);
            let mut at = 0usize;
            let mut prev = 0i64;
            for _ in 0..count {
                let d = unzigzag(take_varint(data, &mut at)?);
                prev = prev.wrapping_add(d);
                plane.push(prev);
            }
            if at != data.len() {
                return Err("index chunk has trailing bytes".into());
            }
            Ok(Chunk::I64(plane))
        }
        2 | 4 | 8 => {
            let width = tag as usize;
            let expect = count
                .checked_mul(width)
                .ok_or("chunk byte length overflows")?;
            if data.len() != expect {
                return Err(format!(
                    "width-{tag} chunk carries {} bytes for {count} elements",
                    data.len()
                ));
            }
            let mut plane = Vec::with_capacity(count);
            match tag {
                2 => {
                    for pair in data.chunks_exact(2) {
                        let mut b = [0u8; 2];
                        b.copy_from_slice(pair);
                        plane.push(Half::from_bits(u16::from_le_bytes(b)).to_f64());
                    }
                }
                4 => {
                    for quad in data.chunks_exact(4) {
                        let mut b = [0u8; 4];
                        b.copy_from_slice(quad);
                        plane.push(f64::from(f32::from_bits(u32::from_le_bytes(b))));
                    }
                }
                _ => {
                    for oct in data.chunks_exact(8) {
                        let mut b = [0u8; 8];
                        b.copy_from_slice(oct);
                        plane.push(f64::from_bits(u64::from_le_bytes(b)));
                    }
                }
            }
            Ok(Chunk::F64(plane))
        }
        other => Err(format!("unknown chunk width tag {other}")),
    }
}

fn parse_payload(bytes: &[u8]) -> Result<Message, String> {
    let mut at = 0usize;
    let json_len = take_u32(bytes, &mut at)? as usize;
    let json_bytes = take_slice(bytes, &mut at, json_len)?;
    let text =
        std::str::from_utf8(json_bytes).map_err(|_| "envelope JSON is not UTF-8".to_string())?;
    let json = Json::parse(text).map_err(|e| format!("envelope JSON: {e}"))?;
    let chunk_count = take_u16(bytes, &mut at)? as usize;
    let mut chunks = Vec::with_capacity(chunk_count.min(1024));
    for _ in 0..chunk_count {
        let tag = take_u8(bytes, &mut at)?;
        let count = take_u32(bytes, &mut at)? as usize;
        let byte_len = take_u32(bytes, &mut at)? as usize;
        let data = take_slice(bytes, &mut at, byte_len)?;
        chunks.push(decode_chunk(tag, count, data)?);
    }
    if at != bytes.len() {
        return Err("envelope has trailing bytes".into());
    }
    Ok(Message { json, chunks })
}

/// A pooled frame encoder/decoder: one per connection, reusing its
/// payload and frame buffers across requests so the steady state does no
/// per-request allocation for the envelope itself.
#[derive(Debug, Default)]
pub struct FrameCodec {
    frame: Vec<u8>,
    payload: Vec<u8>,
}

impl FrameCodec {
    /// A codec with empty (lazily grown) buffers.
    pub fn new() -> FrameCodec {
        FrameCodec::default()
    }

    /// Encode `msg` into one contiguous frame, narrowing float chunks to
    /// their lossless width when `narrow` is set. The returned slice
    /// borrows the codec's pooled buffer — write it with a single
    /// `write_all` before the next encode.
    pub fn encode(&mut self, msg: &Message, narrow: bool) -> Result<&[u8], String> {
        self.payload.clear();
        let text = msg.json.to_string();
        let json_len =
            u32::try_from(text.len()).map_err(|_| "envelope JSON longer than u32".to_string())?;
        push_u32(&mut self.payload, json_len);
        self.payload.extend_from_slice(text.as_bytes());
        let chunk_count =
            u16::try_from(msg.chunks.len()).map_err(|_| "more than u16::MAX chunks".to_string())?;
        self.payload.extend_from_slice(&chunk_count.to_le_bytes());
        for chunk in &msg.chunks {
            encode_chunk(&mut self.payload, chunk, narrow)?;
        }
        if self.payload.len() > MAX_FRAME_BYTES {
            return Err(format!(
                "frame payload of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
                self.payload.len()
            ));
        }
        self.frame.clear();
        self.frame.extend_from_slice(&WIRE_MAGIC);
        self.frame.push(WIRE_VERSION);
        self.frame.push(FRAME_KIND_MESSAGE);
        push_u32(&mut self.frame, self.payload.len() as u32);
        self.frame.extend_from_slice(&self.payload);
        push_u32(&mut self.frame, crc32(&self.payload));
        Ok(&self.frame)
    }

    /// Read one frame. `Ok(None)` is a clean end of stream (EOF before
    /// any header byte); `Ok(Some((msg, bytes)))` carries the decoded
    /// message and the frame's total size on the wire.
    pub fn read(&mut self, reader: &mut impl BufRead) -> Result<Option<(Message, u64)>, WireError> {
        if reader.fill_buf()?.is_empty() {
            return Ok(None);
        }
        let mut header = [0u8; 8];
        reader.read_exact(&mut header)?;
        if header[0..2] != WIRE_MAGIC {
            return Err(WireError::Desync(format!(
                "bad magic {:02x}{:02x}",
                header[0], header[1]
            )));
        }
        if header[2] != WIRE_VERSION {
            return Err(WireError::Desync(format!(
                "unsupported wire version {}",
                header[2]
            )));
        }
        if header[3] != FRAME_KIND_MESSAGE {
            return Err(WireError::Desync(format!(
                "unknown frame kind {}",
                header[3]
            )));
        }
        let mut len_bytes = [0u8; 4];
        len_bytes.copy_from_slice(&header[4..8]);
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(WireError::Desync(format!(
                "length prefix {len} exceeds the {MAX_FRAME_BYTES}-byte cap"
            )));
        }
        self.payload.clear();
        self.payload.resize(len, 0);
        reader.read_exact(&mut self.payload)?;
        let mut crc_bytes = [0u8; 4];
        reader.read_exact(&mut crc_bytes)?;
        let expect = u32::from_le_bytes(crc_bytes);
        let got = crc32(&self.payload);
        if got != expect {
            return Err(WireError::Corrupt(format!(
                "checksum mismatch: frame says {expect:08x}, payload hashes to {got:08x}"
            )));
        }
        let msg = parse_payload(&self.payload).map_err(WireError::Corrupt)?;
        Ok(Some((msg, (8 + len + 4) as u64)))
    }
}

/// A client connection that negotiates the binary upgrade and falls back
/// to JSON lines transparently, with `TCP_NODELAY`, buffered writes and
/// byte accounting on both transports.
pub struct WireConn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    codec: FrameCodec,
    binary: bool,
    bytes_sent: u64,
    bytes_received: u64,
}

impl std::fmt::Debug for WireConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireConn")
            .field("binary", &self.binary)
            .field("bytes_sent", &self.bytes_sent)
            .field("bytes_received", &self.bytes_received)
            .finish()
    }
}

impl WireConn {
    /// Connect to `addr`, set `TCP_NODELAY` (and `read_timeout`, when
    /// given), and — unless `prefer` is [`WirePreference::Json`] — run the
    /// `wire_upgrade` negotiation. A server that answers the upgrade with
    /// an error (an old peer) leaves the connection in JSON mode; only
    /// transport failures error out.
    pub fn connect(
        addr: &str,
        read_timeout: Option<Duration>,
        prefer: WirePreference,
    ) -> Result<WireConn, WireError> {
        let stream = TcpStream::connect(addr)?;
        // Request/response protocol: Nagle only adds latency here.
        let _ = stream.set_nodelay(true);
        if read_timeout.is_some() {
            stream.set_read_timeout(read_timeout)?;
        }
        let writer = BufWriter::new(stream.try_clone()?);
        let mut conn = WireConn {
            reader: BufReader::new(stream),
            writer,
            codec: FrameCodec::new(),
            binary: false,
            bytes_sent: 0,
            bytes_received: 0,
        };
        if prefer == WirePreference::Auto {
            conn.upgrade()?;
        }
        Ok(conn)
    }

    fn upgrade(&mut self) -> Result<(), WireError> {
        let request = Json::obj(vec![
            ("op", Json::str("wire_upgrade")),
            ("version", Json::num(f64::from(WIRE_VERSION))),
        ]);
        self.send_json_line(&request)?;
        let reply = self.recv_json_line()?;
        if reply.get("ok").and_then(Json::as_bool) == Some(true)
            && reply.get("wire").and_then(Json::as_str) == Some("binary")
        {
            self.binary = true;
        }
        Ok(())
    }

    /// Whether the binary upgrade succeeded.
    pub fn is_binary(&self) -> bool {
        self.binary
    }

    /// Bytes written to the socket so far (both transports, framing
    /// included).
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Bytes read from the socket so far.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    fn send_json_line(&mut self, json: &Json) -> Result<(), WireError> {
        let text = json.to_string();
        self.writer.write_all(text.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.bytes_sent += text.len() as u64 + 1;
        Ok(())
    }

    fn recv_json_line(&mut self) -> Result<Json, WireError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(WireError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed by peer",
            )));
        }
        self.bytes_received += n as u64;
        Json::parse(line.trim()).map_err(WireError::Corrupt)
    }

    /// Send one message on the active transport. On a JSON connection the
    /// message must be chunkless — bulk payloads belong inline in the
    /// JSON there.
    pub fn send(&mut self, msg: &Message) -> Result<(), WireError> {
        if self.binary {
            let frame = self.codec.encode(msg, true).map_err(WireError::Corrupt)?;
            self.writer.write_all(frame)?;
            self.writer.flush()?;
            self.bytes_sent += frame.len() as u64;
            Ok(())
        } else {
            if !msg.chunks.is_empty() {
                return Err(WireError::Corrupt(
                    "chunked message on a JSON-lines connection".into(),
                ));
            }
            self.send_json_line(&msg.json)
        }
    }

    /// Receive one message on the active transport.
    pub fn recv(&mut self) -> Result<Message, WireError> {
        if self.binary {
            match self.codec.read(&mut self.reader)? {
                Some((msg, n)) => {
                    self.bytes_received += n;
                    Ok(msg)
                }
                None => Err(WireError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed by peer",
                ))),
            }
        } else {
            Ok(Message::json(self.recv_json_line()?))
        }
    }

    /// One round trip: send `msg`, read the reply.
    pub fn request(&mut self, msg: &Message) -> Result<Message, WireError> {
        self.send(msg)?;
        self.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: &Message, narrow: bool) -> (Message, usize) {
        let mut codec = FrameCodec::new();
        let frame = codec.encode(msg, narrow).expect("encode").to_vec();
        let len = frame.len();
        let mut decode = FrameCodec::new();
        let mut reader = std::io::BufReader::new(&frame[..]);
        let (back, n) = decode.read(&mut reader).expect("read").expect("some");
        assert_eq!(n as usize, len);
        (back, len)
    }

    #[test]
    fn zigzag_varint_round_trip() {
        for v in [
            0i64,
            1,
            -1,
            63,
            -64,
            1 << 40,
            -(1 << 40),
            i64::MAX,
            i64::MIN,
        ] {
            let mut buf = Vec::new();
            push_varint(&mut buf, zigzag(v));
            let mut at = 0;
            assert_eq!(unzigzag(take_varint(&buf, &mut at).unwrap()), v);
            assert_eq!(at, buf.len());
        }
    }

    #[test]
    fn varint_rejects_overflowing_tenth_byte() {
        // Canonical u64::MAX: nine continuation bytes, then 0x01.
        let mut buf = Vec::new();
        push_varint(&mut buf, u64::MAX);
        assert_eq!(buf.len(), 10);
        let mut at = 0;
        assert_eq!(take_varint(&buf, &mut at).unwrap(), u64::MAX);
        // A 10th byte with payload bits beyond the one that fits at
        // shift 63 must error, not silently drop the high bits.
        let bad = [0x80u8, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02];
        let mut at = 0;
        assert!(take_varint(&bad, &mut at).is_err());
    }

    #[test]
    fn encode_rejects_byte_len_overflow() {
        // A plane whose element count * width overflows u32 bytes must
        // be a typed error, not a wrapped length. 2^29 elements at
        // width 8 is the smallest overflow; the all-zero plane is an
        // untouched lazy-zero allocation and the encoder errors before
        // reading any element.
        let plane = vec![0.0f64; 1usize << 29];
        let mut out = Vec::new();
        let err = encode_chunk(&mut out, &Chunk::F64(plane), false).unwrap_err();
        assert!(err.contains("u32"), "{err}");
    }

    #[test]
    fn narrowest_width_scans_bit_exactly() {
        assert_eq!(narrowest_width(&[0.0, 1.0, -2.5, f64::INFINITY]), 2);
        // 1e-20 rounds in f32 but `1e-20f32 as f64` is f32-exact, and it
        // underflows Half to zero, so the pair settles at width 4.
        assert_eq!(narrowest_width(&[1.5f32 as f64, 1e-20f32 as f64]), 4);
        assert_eq!(narrowest_width(&[0.1]), 8);
        assert_eq!(narrowest_width(&[1e300]), 8);
        // `Half::from_f64`/`to_f64` reproduce the canonical quiet NaN
        // bit-exactly (the codec uses the same pair, so this is sound by
        // construction); a payload NaN can never narrow.
        assert_eq!(narrowest_width(&[f64::NAN]), 2);
        assert_eq!(narrowest_width(&[f64::from_bits(0x7FF0_0000_0000_0001)]), 8);
        // -0.0 keeps its sign bit at every width.
        assert_eq!(narrowest_width(&[-0.0]), 2);
        assert_eq!(narrowest_width(&[]), 2);
    }

    #[test]
    fn frame_round_trips_planes_bit_exactly() {
        let json = Json::obj(vec![("op", Json::str("tile_exec")), ("x", Json::num(3.0))]);
        let plane = vec![f64::INFINITY, -0.0, 1.5, f64::NAN, 1e-300, -7.25];
        let idx = vec![-1i64, 0, 5, 4, 1 << 33, -9];
        let msg = Message {
            json: json.clone(),
            chunks: vec![Chunk::F64(plane.clone()), Chunk::I64(idx.clone())],
        };
        for narrow in [false, true] {
            let (back, _) = round_trip(&msg, narrow);
            assert_eq!(back.json, json);
            assert_eq!(back.chunks.len(), 2);
            match &back.chunks[0] {
                Chunk::F64(p) => {
                    assert_eq!(p.len(), plane.len());
                    for (a, b) in plane.iter().zip(p) {
                        assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
                    }
                }
                other => panic!("expected F64, got {other:?}"),
            }
            assert_eq!(back.chunks[1], Chunk::I64(idx.clone()));
        }
    }

    #[test]
    fn narrow_fp32_plane_is_under_half_the_wide_frame() {
        let plane: Vec<f64> = (0..4096).map(|i| f64::from(i as f32 * 0.25)).collect();
        let msg = Message {
            json: Json::obj(vec![("op", Json::str("tile_exec"))]),
            chunks: vec![Chunk::F64(plane)],
        };
        let (_, wide) = round_trip(&msg, false);
        let (_, narrow) = round_trip(&msg, true);
        assert!(narrow * 2 < wide + 64, "narrow {narrow} vs wide {wide}");
    }

    #[test]
    fn corrupt_checksum_is_recoverable_desync_is_not() {
        let msg = Message::json(Json::obj(vec![("op", Json::str("ping"))]));
        let mut codec = FrameCodec::new();
        let mut frame = codec.encode(&msg, true).expect("encode").to_vec();
        let last = frame.len() - 1;
        frame[last] ^= 0xFF;
        let mut reader = std::io::BufReader::new(&frame[..]);
        match codec.read(&mut reader) {
            Err(WireError::Corrupt(_)) => {}
            other => panic!("flipped checksum must be Corrupt, got {other:?}"),
        }

        let mut bad_magic = codec.encode(&msg, true).expect("encode").to_vec();
        bad_magic[0] = b'X';
        let mut reader = std::io::BufReader::new(&bad_magic[..]);
        match codec.read(&mut reader) {
            Err(WireError::Desync(_)) => {}
            other => panic!("bad magic must be Desync, got {other:?}"),
        }

        let mut oversized = codec.encode(&msg, true).expect("encode").to_vec();
        oversized[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut reader = std::io::BufReader::new(&oversized[..]);
        match codec.read(&mut reader) {
            Err(WireError::Desync(e)) => assert!(e.contains("length prefix"), "{e}"),
            other => panic!("oversized length must be Desync, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frame_is_io_clean_eof_is_none() {
        let msg = Message::json(Json::obj(vec![("op", Json::str("ping"))]));
        let mut codec = FrameCodec::new();
        let frame = codec.encode(&msg, true).expect("encode").to_vec();
        let mut reader = std::io::BufReader::new(&frame[..frame.len() / 2]);
        match codec.read(&mut reader) {
            Err(WireError::Io(_)) => {}
            other => panic!("truncated frame must be Io, got {other:?}"),
        }
        let empty: &[u8] = &[];
        let mut reader = std::io::BufReader::new(empty);
        assert!(matches!(codec.read(&mut reader), Ok(None)));
    }

    #[test]
    fn split_reads_reassemble_frames() {
        // A reader that yields one byte per read: the codec must be
        // agnostic to how the transport fragments the stream.
        struct OneByte<'a>(&'a [u8]);
        impl std::io::Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                match self.0.split_first() {
                    Some((b, rest)) if !buf.is_empty() => {
                        buf[0] = *b;
                        self.0 = rest;
                        Ok(1)
                    }
                    _ => Ok(0),
                }
            }
        }
        let msg = Message {
            json: Json::obj(vec![("op", Json::str("stream_append"))]),
            chunks: vec![Chunk::F64(vec![1.25, -3.5]), Chunk::I64(vec![7, -2])],
        };
        let mut codec = FrameCodec::new();
        let frame = codec.encode(&msg, true).expect("encode").to_vec();
        let mut reader = std::io::BufReader::with_capacity(1, OneByte(&frame));
        let (back, n) = codec.read(&mut reader).expect("read").expect("some");
        assert_eq!(n as usize, frame.len());
        assert_eq!(back, msg);
    }

    #[test]
    fn garbage_bytes_never_panic_the_decoder() {
        // Deterministic pseudo-random garbage, plus mutations of a valid
        // frame: every outcome must be a typed error or a decode, never a
        // panic or a runaway allocation.
        let msg = Message {
            json: Json::obj(vec![("op", Json::str("ping"))]),
            chunks: vec![Chunk::I64(vec![1, 2, 3])],
        };
        let mut codec = FrameCodec::new();
        let valid = codec.encode(&msg, true).expect("encode").to_vec();
        let mut state = 0x12345678u64;
        let mut rand = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        };
        for trial in 0..200 {
            let mut bytes = valid.clone();
            let flips = 1 + trial % 4;
            for _ in 0..flips {
                let at = rand() as usize % bytes.len();
                bytes[at] ^= rand() | 1;
            }
            let mut reader = std::io::BufReader::new(&bytes[..]);
            let _ = codec.read(&mut reader);
        }
        for len in [0usize, 1, 7, 8, 20] {
            let garbage: Vec<u8> = (0..len).map(|_| rand()).collect();
            let mut reader = std::io::BufReader::new(&garbage[..]);
            let _ = codec.read(&mut reader);
        }
    }

    #[test]
    fn wire_preference_reads_env() {
        // Not parallel-safe to set the var here (other tests read it), so
        // just check the default path.
        assert!(matches!(
            wire_preference(),
            WirePreference::Auto | WirePreference::Json
        ));
    }
}

//! The bounded submission queue: admission control with backpressure
//! (submissions beyond the capacity are rejected, not buffered), priority
//! classes with FIFO order inside each class, and a close signal that lets
//! workers drain remaining work and exit.

use crate::job::{JobId, Priority};
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Condvar, Mutex};

/// Why a submission was not accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity — back off and resubmit later.
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// The service is shutting down and accepts no new work.
    ShuttingDown,
    /// The job description is invalid.
    BadSpec(String),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(
                    f,
                    "queue full (capacity {capacity}); backpressure — retry later"
                )
            }
            SubmitError::ShuttingDown => f.write_str("service is shutting down"),
            SubmitError::BadSpec(msg) => write!(f, "invalid job spec: {msg}"),
        }
    }
}

impl std::error::Error for SubmitError {}

#[derive(Debug, Default)]
struct QueueInner {
    /// One FIFO lane per priority class, indexed by `Priority as usize`.
    lanes: [VecDeque<JobId>; 3],
    closed: bool,
}

impl QueueInner {
    fn len(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }
}

/// The bounded, priority-ordered job queue.
#[derive(Debug)]
pub struct JobQueue {
    inner: Mutex<QueueInner>,
    nonempty: Condvar,
    capacity: usize,
}

impl JobQueue {
    /// A queue admitting at most `capacity` waiting jobs.
    pub fn new(capacity: usize) -> JobQueue {
        assert!(capacity > 0, "queue capacity must be positive");
        JobQueue {
            inner: Mutex::new(QueueInner::default()),
            nonempty: Condvar::new(),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently waiting.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admit a job, or reject it with backpressure. Never blocks.
    pub fn push(&self, id: JobId, priority: Priority) -> Result<(), SubmitError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(SubmitError::ShuttingDown);
        }
        if inner.len() >= self.capacity {
            return Err(SubmitError::QueueFull {
                capacity: self.capacity,
            });
        }
        inner.lanes[priority as usize].push_back(id);
        drop(inner);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Take the next job: highest priority class first, FIFO within it.
    /// Blocks while the queue is empty; returns `None` once the queue is
    /// closed **and** drained — the worker-exit signal.
    pub fn pop(&self) -> Option<JobId> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            for lane in inner.lanes.iter_mut() {
                if let Some(id) = lane.pop_front() {
                    return Some(id);
                }
            }
            if inner.closed {
                return None;
            }
            inner = self.nonempty.wait(inner).unwrap();
        }
    }

    /// Remove a specific job if it is still waiting (cancellation).
    pub fn remove(&self, id: JobId) -> bool {
        let mut inner = self.inner.lock().unwrap();
        for lane in inner.lanes.iter_mut() {
            if let Some(pos) = lane.iter().position(|&j| j == id) {
                lane.remove(pos);
                return true;
            }
        }
        false
    }

    /// Close the queue: no new submissions; waiting jobs stay poppable.
    /// Wakes every blocked `pop`.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.nonempty.notify_all();
    }

    /// Close and discard all waiting jobs, returning them (for marking as
    /// cancelled).
    pub fn close_and_drain(&self) -> Vec<JobId> {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        let dropped = inner
            .lanes
            .iter_mut()
            .flat_map(|lane| lane.drain(..).collect::<Vec<_>>())
            .collect();
        drop(inner);
        self.nonempty.notify_all();
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full() {
        let q = JobQueue::new(2);
        q.push(1, Priority::Normal).unwrap();
        q.push(2, Priority::Normal).unwrap();
        assert_eq!(
            q.push(3, Priority::High),
            Err(SubmitError::QueueFull { capacity: 2 })
        );
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn priority_then_fifo_order() {
        let q = JobQueue::new(8);
        q.push(1, Priority::Low).unwrap();
        q.push(2, Priority::Normal).unwrap();
        q.push(3, Priority::High).unwrap();
        q.push(4, Priority::Normal).unwrap();
        q.close();
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn closed_queue_rejects_and_drains() {
        let q = JobQueue::new(4);
        q.push(1, Priority::Normal).unwrap();
        q.close();
        assert_eq!(q.push(2, Priority::Normal), Err(SubmitError::ShuttingDown));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancellation_removes_waiting_jobs_only() {
        let q = JobQueue::new(4);
        q.push(7, Priority::Normal).unwrap();
        assert!(q.remove(7));
        assert!(!q.remove(7));
        assert!(q.is_empty());
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = Arc::new(JobQueue::new(4));
        let q2 = Arc::clone(&q);
        let handle = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(42, Priority::Normal).unwrap();
        assert_eq!(handle.join().unwrap(), Some(42));
    }

    #[test]
    fn close_and_drain_reports_dropped_jobs() {
        let q = JobQueue::new(4);
        q.push(1, Priority::Low).unwrap();
        q.push(2, Priority::High).unwrap();
        let mut dropped = q.close_and_drain();
        dropped.sort_unstable();
        assert_eq!(dropped, vec![1, 2]);
        assert_eq!(q.pop(), None);
    }
}

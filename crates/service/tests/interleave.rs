//! Deterministic-interleaving model checks (vendor/interleave) of the
//! four riskiest concurrent structures in the pipeline:
//!
//! 1. the single-flight leader/follower protocol of
//!    `crates/service/src/cache.rs` (exactly one compute and one recorded
//!    miss, poisoned leaders re-elected, no lost wakeup);
//! 2. the device-pool lease of `crates/service/src/pool.rs` (no
//!    over-lease, batch release must `notify_all`);
//! 3. the tile reorder buffer of `crates/core/src/driver.rs` (atomic
//!    claim + BTreeMap reorder ⇒ strictly in-order merge, each tile
//!    exactly once);
//! 4. the per-session locking of `crates/service/src/session.rs`
//!    (distinct sessions never serialize on a common lock, same-session
//!    appends apply exactly once in order, close-vs-append races are
//!    clean — plus a deadlock control modelling the old global mutex).
//!
//! Each model is written against the checker's `Mutex`/`Condvar`/atomics
//! with the same lock protocol as the production code, so every schedule
//! the checker explores is a schedule the real structure could see.
//! Deadlocks (= lost wakeups) and assertion failures abort with the
//! failing schedule's decision trace.
//!
//! The `full_*` tests sweep thousands of schedules and are skipped under
//! Miri (each schedule spawns real threads); the `smoke_*` tests run a
//! small bound everywhere, including `cargo miri test`.

use interleave::{explore, spawn, AtomicUsize, Condvar, Config, Mutex};
use std::collections::BTreeMap;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Model 1: single-flight cache fill (cache.rs).
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum FlightState {
    Pending,
    Done(u32),
    Poisoned,
}

struct Flight {
    state: Mutex<FlightState>,
    ready: Condvar,
}

struct SingleFlight {
    /// `None` = no computation in progress for the (one) key.
    inflight: Mutex<Option<Arc<Flight>>>,
    /// The cached value, once computed.
    cache: Mutex<Option<u32>>,
    computes: AtomicUsize,
    misses: AtomicUsize,
    /// Leader crashes left to inject (the poisoned-leader variant).
    crashes: AtomicUsize,
}

enum Role {
    Leader(Arc<Flight>),
    Follower(Arc<Flight>),
}

/// The model's `get_or_compute`, with the same lock protocol as
/// `PrecalcCache::get_or_compute`: the cache re-check happens under the
/// inflight lock, the leader publishes state *then* retires the flight,
/// and followers loop on `Poisoned` to re-elect. Returns `None` if this
/// thread was a leader that crashed.
fn get_or_compute(sf: &SingleFlight) -> Option<u32> {
    loop {
        let role = {
            let mut inflight = sf.inflight.lock();
            if let Some(v) = *sf.cache.lock() {
                return Some(v);
            }
            match &*inflight {
                Some(f) => Role::Follower(Arc::clone(f)),
                None => {
                    let f = Arc::new(Flight {
                        state: Mutex::new(FlightState::Pending),
                        ready: Condvar::new(),
                    });
                    *inflight = Some(Arc::clone(&f));
                    Role::Leader(f)
                }
            }
        };
        match role {
            Role::Leader(flight) => {
                sf.misses.fetch_add(1);
                // A crashing leader publishes Poisoned without computing
                // (the production FlightGuard does this on unwind) and
                // still retires the flight.
                let crashed = sf.crashes.load() > 0 && {
                    sf.crashes.fetch_sub(1);
                    true
                };
                let publish = if crashed {
                    FlightState::Poisoned
                } else {
                    sf.computes.fetch_add(1);
                    *sf.cache.lock() = Some(42);
                    FlightState::Done(42)
                };
                *flight.state.lock() = publish;
                flight.ready.notify_all();
                *sf.inflight.lock() = None;
                return if crashed { None } else { Some(42) };
            }
            Role::Follower(flight) => {
                let mut state = flight.state.lock();
                while *state == FlightState::Pending {
                    state = flight.ready.wait(state);
                }
                match *state {
                    FlightState::Done(v) => return Some(v),
                    FlightState::Poisoned => continue,
                    FlightState::Pending => unreachable!(),
                }
            }
        }
    }
}

fn single_flight_model(threads: usize, crashes: usize) -> impl Fn() + Send + Sync + 'static {
    move || {
        let sf = Arc::new(SingleFlight {
            inflight: Mutex::new(None),
            cache: Mutex::new(None),
            computes: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            crashes: AtomicUsize::new(crashes),
        });
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let sf = Arc::clone(&sf);
                spawn(move || {
                    if let Some(v) = get_or_compute(&sf) {
                        assert_eq!(v, 42, "every served caller sees the one value");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(sf.computes.load(), 1, "exactly one compute");
        assert_eq!(
            sf.misses.load(),
            1 + crashes,
            "exactly one recorded miss per elected leader"
        );
        assert_eq!(*sf.cache.lock(), Some(42), "result is published");
    }
}

#[test]
#[cfg_attr(miri, ignore = "full exploration spawns thousands of OS threads")]
fn full_single_flight_exactly_one_miss() {
    let report = explore(Config::quick(2500), single_flight_model(3, 0));
    assert!(
        report.schedules > 1000,
        "acceptance: >1000 distinct schedules, got {}",
        report.schedules
    );
}

#[test]
#[cfg_attr(miri, ignore = "full exploration spawns thousands of OS threads")]
fn full_single_flight_poisoned_leader_reelects() {
    let report = explore(Config::quick(2500), single_flight_model(3, 1));
    assert!(report.schedules > 1000, "got {}", report.schedules);
}

#[test]
fn smoke_single_flight() {
    explore(Config::quick(48), single_flight_model(2, 0));
    explore(Config::quick(48), single_flight_model(2, 1));
}

// ---------------------------------------------------------------------------
// Model 2: device-pool lease (pool.rs).
// ---------------------------------------------------------------------------

struct Pool {
    free: Mutex<Vec<u32>>,
    available: Condvar,
}

impl Pool {
    /// `DevicePool::lease`: wait until `n` devices are free, take them.
    fn lease(&self, n: usize) -> Vec<u32> {
        let mut free = self.free.lock();
        while free.len() < n {
            free = self.available.wait(free);
        }
        let at = free.len() - n;
        free.split_off(at)
    }

    /// `DevicePool::release`: return devices, wake *all* waiters — a
    /// single `notify_one` after a batch release strands a waiter (see
    /// the should_panic demo below).
    fn release(&self, devices: Vec<u32>, notify_all: bool) {
        let mut free = self.free.lock();
        free.extend(devices);
        drop(free);
        if notify_all {
            self.available.notify_all();
        } else {
            self.available.notify_one();
        }
    }
}

/// One holder starts with both devices; two pinners then each lease one
/// device and keep it (a drain's last jobs). Completion under every
/// schedule means no lost wakeup; the checker's deadlock detection is
/// the oracle.
fn pool_model(notify_all: bool) -> impl Fn() + Send + Sync + 'static {
    move || {
        let pool = Arc::new(Pool {
            free: Mutex::new(Vec::new()),
            available: Condvar::new(),
        });
        let outstanding = Arc::new(AtomicUsize::new(2)); // holder owns both
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let outstanding = Arc::clone(&outstanding);
                spawn(move || {
                    let got = pool.lease(1);
                    assert_eq!(got.len(), 1);
                    let total = outstanding.fetch_add(1) + 1;
                    assert!(total <= 2, "over-lease: {total} devices out");
                })
            })
            .collect();
        // The holder returns both devices in one batch release.
        outstanding.fetch_sub(2);
        pool.release(vec![0, 1], notify_all);
        for h in handles {
            h.join();
        }
    }
}

#[test]
#[cfg_attr(miri, ignore = "full exploration spawns thousands of OS threads")]
fn full_pool_lease_no_lost_wakeup() {
    let report = explore(Config::quick(2500), pool_model(true));
    assert!(report.schedules > 1000, "got {}", report.schedules);
}

#[test]
fn smoke_pool_lease() {
    explore(Config::quick(48), pool_model(true));
}

/// The negative control: with `notify_one`, a batch release wakes only
/// one of the two pinners — the other waits forever while a device sits
/// free. The checker reports the lost wakeup as a deadlock.
#[test]
#[cfg_attr(miri, ignore = "deadlock exploration spawns many OS threads")]
#[should_panic(expected = "deadlock")]
fn pool_batch_release_with_notify_one_strands_a_waiter() {
    explore(Config::quick(60_000), pool_model(false));
}

// ---------------------------------------------------------------------------
// Model 3: tile reorder buffer (driver.rs).
// ---------------------------------------------------------------------------

/// Workers claim tile indices from an atomic counter and send results
/// over a channel in completion order; the coordinator parks them in a
/// BTreeMap and merges strictly ascending — the driver's bit-identity
/// argument under host parallelism, shrunk to its skeleton.
fn reorder_model(n_tiles: usize, n_workers: usize) -> impl Fn() + Send + Sync + 'static {
    move || {
        let next_tile = Arc::new(AtomicUsize::new(0));
        let channel = Arc::new(Mutex::new(Vec::<(usize, u32)>::new()));
        let sent = Arc::new(Condvar::new());
        let done_workers = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..n_workers)
            .map(|_| {
                let next_tile = Arc::clone(&next_tile);
                let channel = Arc::clone(&channel);
                let sent = Arc::clone(&sent);
                let done_workers = Arc::clone(&done_workers);
                spawn(move || {
                    loop {
                        let idx = next_tile.fetch_add(1);
                        if idx >= n_tiles {
                            break;
                        }
                        // "Compute" the tile: payload is a pure function
                        // of the index, like a real tile of the profile.
                        let payload = (idx as u32) * 10 + 7;
                        channel.lock().push((idx, payload));
                        sent.notify_all();
                    }
                    done_workers.fetch_add(1);
                    sent.notify_all();
                })
            })
            .collect();

        // Coordinator: drain the channel, reorder, merge in order.
        let mut pending = BTreeMap::new();
        let mut merged = Vec::new();
        while merged.len() < n_tiles {
            let batch: Vec<(usize, u32)> = {
                let mut ch = channel.lock();
                while ch.is_empty() {
                    assert!(
                        done_workers.load() < n_workers,
                        "workers exited with tiles missing"
                    );
                    ch = sent.wait(ch);
                }
                std::mem::take(&mut *ch)
            };
            for (idx, payload) in batch {
                let prev = pending.insert(idx, payload);
                assert!(prev.is_none(), "tile {idx} produced twice");
            }
            while let Some(payload) = pending.remove(&merged.len()) {
                merged.push(payload);
            }
        }
        for h in handles {
            h.join();
        }
        // In-order merge of every tile exactly once, regardless of the
        // completion order the schedule imposed.
        let expect: Vec<u32> = (0..n_tiles as u32).map(|i| i * 10 + 7).collect();
        assert_eq!(merged, expect);
    }
}

#[test]
#[cfg_attr(miri, ignore = "full exploration spawns thousands of OS threads")]
fn full_reorder_buffer_merges_in_order() {
    let report = explore(Config::quick(2500), reorder_model(3, 2));
    assert!(report.schedules > 1000, "got {}", report.schedules);
}

#[test]
fn smoke_reorder_buffer() {
    explore(Config::quick(48), reorder_model(2, 2));
}

// ---------------------------------------------------------------------------
// Model 4: per-session locking (session.rs).
// ---------------------------------------------------------------------------

/// `SessionManager` shrunk to its lock protocol: a table mutex held only
/// to fetch/insert/remove a session's `Arc`, and a per-session mutex held
/// across the append itself. Session state is the append log, so ordering
/// and exactly-once are directly observable.
/// One session's append log: (writer id, sequence number) entries.
type SessionLog = Arc<Mutex<Vec<(usize, usize)>>>;

struct SessionTable {
    sessions: Mutex<BTreeMap<u64, SessionLog>>,
}

impl SessionTable {
    fn with_sessions(ids: &[u64]) -> SessionTable {
        let mut map = BTreeMap::new();
        for &id in ids {
            map.insert(id, Arc::new(Mutex::new(Vec::new())));
        }
        SessionTable {
            sessions: Mutex::new(map),
        }
    }

    /// `SessionManager::append`: table lock only for the Arc fetch, the
    /// session's own lock for the work. Returns false for unknown ids.
    fn append(&self, id: u64, entry: (usize, usize)) -> bool {
        let session = match self.sessions.lock().get(&id) {
            Some(s) => Arc::clone(s),
            None => return false,
        };
        session.lock().push(entry);
        true
    }

    /// `SessionManager::close`: drop the Arc from the table; an in-flight
    /// append finishes on the detached session.
    fn close(&self, id: u64) -> bool {
        self.sessions.lock().remove(&id).is_some()
    }

    fn log(&self, id: u64) -> Vec<(usize, usize)> {
        let session = Arc::clone(self.sessions.lock().get(&id).expect("session"));
        let log = session.lock();
        log.clone()
    }
}

/// Distinct sessions must not serialize behind a common lock: thread A
/// parks *inside* session 1's critical section until thread B's append to
/// session 2 has completed. With per-session locks (`global = false`)
/// every schedule completes; with the old global-mutex protocol
/// (`global = true`) the schedule where A enters first is a deadlock —
/// the should_panic control below.
fn session_blocking_model(global: bool) -> impl Fn() + Send + Sync + 'static {
    move || {
        let table = Arc::new(SessionTable::with_sessions(&[1, 2]));
        let global_lock = Arc::new(Mutex::new(()));
        let b_done = Arc::new((Mutex::new(false), Condvar::new()));

        let a = {
            let table = Arc::clone(&table);
            let global_lock = Arc::clone(&global_lock);
            let b_done = Arc::clone(&b_done);
            spawn(move || {
                let _g = global.then(|| global_lock.lock());
                let session = Arc::clone(table.sessions.lock().get(&1).expect("session 1"));
                let mut log = session.lock();
                log.push((1, 0));
                // Hold session 1 while waiting for B — legal for a slow
                // append; must never block a session-2 append.
                let mut done = b_done.0.lock();
                while !*done {
                    done = b_done.1.wait(done);
                }
            })
        };
        let b = {
            let table = Arc::clone(&table);
            let global_lock = Arc::clone(&global_lock);
            let b_done = Arc::clone(&b_done);
            spawn(move || {
                {
                    let _g = global.then(|| global_lock.lock());
                    assert!(table.append(2, (2, 0)));
                }
                *b_done.0.lock() = true;
                b_done.1.notify_all();
            })
        };
        a.join();
        b.join();
        assert_eq!(table.log(1), vec![(1, 0)]);
        assert_eq!(table.log(2), vec![(2, 0)]);
    }
}

#[test]
#[cfg_attr(miri, ignore = "full exploration spawns thousands of OS threads")]
fn full_distinct_sessions_never_serialize_on_a_common_lock() {
    let report = explore(Config::quick(2500), session_blocking_model(false));
    assert!(report.schedules > 1000, "got {}", report.schedules);
}

/// Negative control: the pre-PR8 protocol (one global session mutex held
/// across appends) deadlocks as soon as a slow append waits for another
/// session's progress. The checker reports the blocked schedule.
#[test]
#[cfg_attr(miri, ignore = "deadlock exploration spawns many OS threads")]
#[should_panic(expected = "deadlock")]
fn global_session_mutex_deadlocks_cross_session_appends() {
    explore(Config::quick(60_000), session_blocking_model(true));
}

/// Same-session appends: two writers, two appends each, every schedule.
/// Each append applies exactly once and each writer's entries appear in
/// its program order (the session lock is the serialization point).
fn session_order_model() -> impl Fn() + Send + Sync + 'static {
    || {
        let table = Arc::new(SessionTable::with_sessions(&[7]));
        let handles: Vec<_> = (0..2)
            .map(|tid| {
                let table = Arc::clone(&table);
                spawn(move || {
                    assert!(table.append(7, (tid, 0)));
                    assert!(table.append(7, (tid, 1)));
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        let log = table.log(7);
        assert_eq!(log.len(), 4, "every append applies exactly once");
        for tid in 0..2 {
            let first = log.iter().position(|&e| e == (tid, 0));
            let second = log.iter().position(|&e| e == (tid, 1));
            assert!(
                first.expect("first append present") < second.expect("second append present"),
                "writer {tid} appends out of order: {log:?}"
            );
        }
    }
}

#[test]
#[cfg_attr(miri, ignore = "full exploration spawns thousands of OS threads")]
fn full_same_session_appends_apply_exactly_once_in_order() {
    let report = explore(Config::quick(2500), session_order_model());
    assert!(report.schedules > 1000, "got {}", report.schedules);
}

/// Close racing an append: under every schedule both threads terminate
/// (no lost wakeup — the checker's deadlock oracle), the table ends
/// empty, and the append either landed on the detached session or
/// reported unknown-session — never half-applied.
fn session_close_model() -> impl Fn() + Send + Sync + 'static {
    || {
        let table = Arc::new(SessionTable::with_sessions(&[3]));
        let applied = Arc::new(AtomicUsize::new(0));
        let appender = {
            let table = Arc::clone(&table);
            let applied = Arc::clone(&applied);
            spawn(move || {
                if table.append(3, (9, 0)) {
                    applied.fetch_add(1);
                }
            })
        };
        let closer = {
            let table = Arc::clone(&table);
            spawn(move || assert!(table.close(3), "close finds the session"))
        };
        appender.join();
        closer.join();
        assert!(
            table.sessions.lock().is_empty(),
            "closed session must leave the table"
        );
        // The append may have landed on the detached session (applied = 1)
        // or seen unknown-session (applied = 0) — both are consistent;
        // what cannot happen is a deadlock or a table entry resurrected by
        // the append.
        assert!(applied.load() <= 1);
    }
}

#[test]
#[cfg_attr(miri, ignore = "full exploration spawns thousands of OS threads")]
fn full_session_close_during_append_loses_no_wakeup() {
    let report = explore(Config::quick(2500), session_close_model());
    assert!(report.schedules > 1000, "got {}", report.schedules);
}

#[test]
fn smoke_session_locking() {
    explore(Config::quick(48), session_blocking_model(false));
    explore(Config::quick(48), session_order_model());
    explore(Config::quick(48), session_close_model());
}

/// Beyond the DFS bound, the seeded-random tail keeps sampling distinct
/// deep interleavings deterministically.
#[test]
fn random_tail_extends_coverage() {
    let cfg = Config {
        max_schedules: 64,
        random_tail: 16,
        ..Config::default()
    };
    let report = explore(cfg, single_flight_model(2, 0));
    assert_eq!(report.schedules, 64 + 16);
}

// Keep the checker honest: an actually-broken protocol must fail.
#[test]
#[cfg_attr(miri, ignore = "exploration spawns many OS threads")]
#[should_panic(expected = "model assertion failed")]
fn checker_catches_double_compute_without_single_flight() {
    explore(Config::quick(512), || {
        let cache = Arc::new(Mutex::new(None::<u32>));
        let computes = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let computes = Arc::clone(&computes);
                spawn(move || {
                    // Check-then-act WITHOUT holding the lock across the
                    // compute: both threads can see None and both compute.
                    let hit = cache.lock().is_some();
                    if !hit {
                        computes.fetch_add(1);
                        *cache.lock() = Some(42);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(computes.load(), 1, "single-flight violated");
    });
}

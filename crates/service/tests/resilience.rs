//! Service-level resilience tests: stalled workers reaped by the
//! per-kernel deadline and the job re-leased, job-level deadlines capping
//! scheduler retries, device quarantine surfacing in the metrics, the
//! precalc single-flight staying consistent under a fault-injected
//! leader, and injected connection drops on the wire.

use mdmp_data::MultiDimSeries;
use mdmp_faults::FaultPlan;
use mdmp_precision::PrecisionMode;
use mdmp_service::{request, serve, JobSpec, JobState, Json, Service, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

fn wave(offset: usize, n: usize, d: usize) -> Arc<MultiDimSeries> {
    let dims = (0..d)
        .map(|k| {
            (0..n)
                .map(|t| {
                    ((t + offset) as f64 * 0.13 + k as f64).sin()
                        + 0.03 * ((t * 7 + k * 3) % 13) as f64
                })
                .collect()
        })
        .collect();
    Arc::new(MultiDimSeries::from_dims(dims))
}

fn plan(spec: &str) -> Option<Arc<FaultPlan>> {
    Some(Arc::new(spec.parse().unwrap()))
}

/// A worker stalled past the per-kernel deadline is reaped (the attempt
/// fails with a timeout instead of hanging), the job is re-leased by the
/// scheduler, and the retry — with the fault budget spent — succeeds.
#[test]
fn stalled_worker_is_reaped_and_job_re_leased() {
    let svc = Service::start(ServiceConfig {
        workers: 1,
        devices: 1,
        retry_base: Duration::from_millis(1),
        ..ServiceConfig::default()
    });
    let (r, q) = (wave(0, 96, 1), wave(31, 96, 1));
    let mut spec = JobSpec::in_memory(r, q, 8, PrecisionMode::Fp32);
    // One stall, 600 ms, budgeted to fire exactly once across attempts;
    // the 250 ms deadline reaps it. Tile retries are off, so the stall
    // fails the whole first run and the *scheduler* must re-lease.
    spec.fault_plan = plan("stall@0:600,budget=1");
    spec.tile_retries = 0;
    spec.tile_deadline_ms = Some(250);
    spec.max_retries = 2;
    let id = svc.submit(spec).unwrap();
    let status = svc.wait(id, Duration::from_secs(60)).unwrap();
    assert_eq!(status.state, JobState::Done, "{:?}", status.error);
    assert_eq!(status.attempts, 2, "first attempt reaped, second clean");
    let stats = svc.stats();
    assert!(stats.jobs_retried >= 1);
    assert_eq!(stats.jobs_completed, 1);
    svc.shutdown(true);
}

/// A job-level deadline stops scheduler retries: a permanently faulted
/// job with a generous retry budget still fails promptly once the
/// deadline passes, and says so.
#[test]
fn job_deadline_caps_scheduler_retries() {
    let svc = Service::start(ServiceConfig {
        workers: 1,
        devices: 1,
        retry_base: Duration::from_millis(1),
        ..ServiceConfig::default()
    });
    let (r, q) = (wave(0, 96, 1), wave(31, 96, 1));
    let mut spec = JobSpec::in_memory(r, q, 8, PrecisionMode::Fp32);
    spec.fault_plan = plan("kernel@0,attempts=all");
    spec.tile_retries = 0;
    spec.max_retries = 50;
    spec.deadline_ms = Some(1);
    let id = svc.submit(spec).unwrap();
    let status = svc.wait(id, Duration::from_secs(60)).unwrap();
    assert_eq!(status.state, JobState::Failed);
    let error = status.error.unwrap();
    assert!(error.contains("deadline"), "{error}");
    assert!(
        status.attempts < 50,
        "deadline must cut retries short, got {} attempts",
        status.attempts
    );
    svc.shutdown(true);
}

/// Repeated kernel failures on one device quarantine it; the run degrades
/// onto the surviving device and the quarantine shows in the service
/// counters.
#[test]
fn quarantined_device_surfaces_in_service_counters() {
    let svc = Service::start(ServiceConfig {
        workers: 1,
        devices: 2,
        ..ServiceConfig::default()
    });
    let (r, q) = (wave(0, 160, 2), wave(31, 160, 2));
    let mut spec = JobSpec::in_memory(r, q, 8, PrecisionMode::Fp16);
    spec.tiles = 8;
    spec.gpus = 2;
    // Round-robin puts even tiles on device 0: three kernel faults there
    // cross the default quarantine threshold.
    spec.fault_plan = plan("seed=3,kernel@0,kernel@2,kernel@4");
    let id = svc.submit(spec).unwrap();
    let status = svc.wait(id, Duration::from_secs(60)).unwrap();
    assert_eq!(status.state, JobState::Done, "{:?}", status.error);
    let stats = svc.stats();
    assert_eq!(stats.devices_quarantined, 1);
    assert!(stats.tile_retries >= 3);
    svc.shutdown(true);
}

/// Two identical jobs race through the precalc cache while the leader's
/// compute is fault-injected on every tile: the single-flight protocol
/// must stay consistent and both jobs must produce the same profile.
#[test]
fn single_flight_cache_consistent_with_fault_injected_leader() {
    let svc = Service::start(ServiceConfig {
        workers: 2,
        devices: 2,
        ..ServiceConfig::default()
    });
    let (r, q) = (wave(0, 256, 2), wave(57, 256, 2));
    let faulted = {
        let mut s = JobSpec::in_memory(Arc::clone(&r), Arc::clone(&q), 16, PrecisionMode::Fp16);
        s.tiles = 4;
        s.fault_plan = plan("seed=9,kernel@0,kernel@1,nan@2,inf@3");
        s
    };
    let clean = {
        let mut s = JobSpec::in_memory(Arc::clone(&r), Arc::clone(&q), 16, PrecisionMode::Fp16);
        s.tiles = 4;
        s
    };
    let id_faulted = svc.submit(faulted).unwrap();
    let id_clean = svc.submit(clean).unwrap();
    let s1 = svc.wait(id_faulted, Duration::from_secs(120)).unwrap();
    let s2 = svc.wait(id_clean, Duration::from_secs(120)).unwrap();
    assert_eq!(s1.state, JobState::Done, "{:?}", s1.error);
    assert_eq!(s2.state, JobState::Done, "{:?}", s2.error);
    assert_eq!(
        *s1.outcome.unwrap().profile,
        *s2.outcome.unwrap().profile,
        "faulted leader must not corrupt the shared precalc"
    );
    let cache = svc.stats();
    // Each job accounts every tile exactly once (hit or miss); which job
    // computed a tile first is a race, but the totals are not.
    assert_eq!(cache.precalc_cache_hits + cache.precalc_cache_misses, 8);
    assert!(cache.precalc_cache_misses >= 1, "someone computed precalc");
    svc.shutdown(true);
}

/// An injected connection drop severs exactly one `wait` response; the
/// client reconnects and the job result is intact.
#[test]
fn connection_drop_severs_one_wait_then_recovers() {
    let svc = Service::start(ServiceConfig {
        workers: 1,
        devices: 1,
        ..ServiceConfig::default()
    });
    let mut server = serve(Arc::clone(&svc), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();

    let job = Json::obj(vec![
        (
            "input",
            Json::obj(vec![
                ("kind", Json::str("synthetic")),
                ("n", Json::num(48.0)),
                ("d", Json::num(1.0)),
                ("seed", Json::num(7.0)),
            ]),
        ),
        ("m", Json::num(8.0)),
        ("mode", Json::str("fp32")),
        ("fault_plan", Json::str("drop")),
    ]);
    let submitted = request(
        &addr,
        &Json::obj(vec![("op", Json::str("submit")), ("job", job)]),
    )
    .unwrap();
    assert_eq!(submitted.get("ok"), Some(&Json::Bool(true)), "{submitted}");
    let id = submitted.get("id").unwrap().as_u64().unwrap();

    let wait_req = Json::obj(vec![
        ("op", Json::str("wait")),
        ("id", Json::num(id as f64)),
        ("timeout_seconds", Json::num(60.0)),
    ]);
    // First wait: the connection is dropped mid-job — no response line.
    assert!(
        request(&addr, &wait_req).is_err(),
        "injected drop must sever the first wait"
    );
    // Reconnect: the fault is consumed, the job result is intact.
    let done = request(&addr, &wait_req).unwrap();
    let job = done.get("job").unwrap();
    assert_eq!(job.get("state").unwrap().as_str(), Some("done"), "{done}");
    assert_eq!(svc.stats().connection_drops_injected, 1);

    server.stop();
    svc.shutdown(true);
}

//! Wire-protocol acceptance over real TCP sockets: the binary frame
//! transport must be **bit-identical** to the JSON-lines transport in
//! every precision mode, survive injected corruption with typed errors
//! (server stays up, counters bump), and round-trip arbitrary planes —
//! NaN payloads, infinities, `-0.0`, subnormals — exactly.

use mdmp_precision::PrecisionMode;
use mdmp_service::{
    decode_index_plane_hex, decode_plane_hex, serve, Chunk, FrameCodec, Json, Message, Server,
    Service, ServiceConfig, WireConn, WirePreference,
};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn start_node() -> (Arc<Service>, Server, String) {
    let service = Service::start(ServiceConfig {
        workers: 1,
        devices: 1,
        ..ServiceConfig::default()
    });
    let server = serve(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();
    (service, server, addr)
}

/// A `tile_exec` request for two tiles of a small synthetic job.
fn tile_exec_request(mode: &str) -> Json {
    Json::obj(vec![
        ("op", Json::str("tile_exec")),
        (
            "job",
            Json::obj(vec![
                (
                    "input",
                    Json::obj(vec![
                        ("kind", Json::str("synthetic")),
                        ("n", Json::num(192.0)),
                        ("d", Json::num(2.0)),
                        ("pattern", Json::num(1.0)),
                        ("noise", Json::num(0.3)),
                        ("seed", Json::num(7.0)),
                    ]),
                ),
                ("m", Json::num(16.0)),
                ("mode", Json::str(mode)),
                ("tiles", Json::num(2.0)),
                ("gpus", Json::num(1.0)),
                ("tile_retries", Json::num(2.0)),
            ]),
        ),
        ("tiles", Json::Arr(vec![Json::num(0.0), Json::num(1.0)])),
    ])
}

/// One decoded tile: (tile, col0, value bits, indices).
type TilePlanes = (usize, usize, Vec<u64>, Vec<i64>);

/// One tile's planes, decoded from either transport's reply entry.
fn planes_of(entry: &Json, chunks: &[Chunk]) -> TilePlanes {
    let field = |k: &str| entry.get(k).and_then(Json::as_u64).expect(k) as usize;
    let len = field("n_query") * field("dims");
    let p = if let Some(at) = entry.get("p_chunk").and_then(Json::as_u64) {
        chunks[at as usize].clone().into_f64().expect("float chunk")
    } else {
        let hex = entry.get("p_hex").and_then(Json::as_str).expect("p_hex");
        decode_plane_hex(hex, len).expect("p_hex decode")
    };
    let i = if let Some(at) = entry.get("i_chunk").and_then(Json::as_u64) {
        chunks[at as usize].clone().into_i64().expect("index chunk")
    } else {
        let hex = entry.get("i_hex").and_then(Json::as_str).expect("i_hex");
        decode_index_plane_hex(hex, len).expect("i_hex decode")
    };
    let bits = p.iter().map(|v| v.to_bits()).collect();
    (field("tile"), field("col0"), bits, i)
}

/// Run one `tile_exec` on a fresh connection with the given transport
/// preference; return the decoded tiles plus the connection's byte
/// counters.
fn exec_tiles(addr: &str, mode: &str, prefer: WirePreference) -> (Vec<TilePlanes>, u64, u64) {
    let mut conn = WireConn::connect(addr, None, prefer).expect("connect");
    assert_eq!(conn.is_binary(), prefer == WirePreference::Auto);
    let reply = conn
        .request(&Message::json(tile_exec_request(mode)))
        .expect("tile_exec");
    assert_eq!(
        reply.json.get("ok").and_then(Json::as_bool),
        Some(true),
        "{:?}",
        reply.json.get("error")
    );
    let entries = reply
        .json
        .get("tiles")
        .and_then(Json::as_arr)
        .expect("tiles");
    let mut tiles: Vec<_> = entries
        .iter()
        .map(|e| planes_of(e, &reply.chunks))
        .collect();
    tiles.sort_by_key(|t| t.0);
    (tiles, conn.bytes_sent(), conn.bytes_received())
}

/// Tentpole acceptance: for every one of the 12 precision modes, the
/// binary transport's planes are bit-identical to the JSON transport's —
/// and materially smaller on the wire.
#[test]
fn binary_transport_is_bit_identical_to_json_in_all_modes() {
    let (_service, _server, addr) = start_node();
    for mode in PrecisionMode::ALL {
        let label = mode.label();
        let (json_tiles, _, json_in) = exec_tiles(&addr, label, WirePreference::Json);
        let (bin_tiles, _, bin_in) = exec_tiles(&addr, label, WirePreference::Auto);
        assert_eq!(json_tiles.len(), 2, "{label}");
        assert_eq!(
            json_tiles, bin_tiles,
            "{label}: binary and JSON planes must be bit-identical"
        );
        assert!(
            bin_in * 2 < json_in,
            "{label}: binary reply ({bin_in} B) must be well under the JSON reply ({json_in} B)"
        );
    }
}

/// The narrowing pays: an FP32-mode reply (4-byte elements) is at least
/// 4x smaller than the same reply over JSON (16 ASCII bytes per element).
#[test]
fn fp32_planes_shrink_at_least_four_fold() {
    let (_service, _server, addr) = start_node();
    let (_, _, json_in) = exec_tiles(&addr, "fp32", WirePreference::Json);
    let (_, _, bin_in) = exec_tiles(&addr, "fp32", WirePreference::Auto);
    assert!(
        bin_in * 4 <= json_in,
        "fp32 binary reply {bin_in} B vs JSON {json_in} B: expected >= 4x reduction"
    );
}

/// Streaming over the binary transport reports the same per-append reuse
/// accounting as the JSON transport fed the same samples.
#[test]
fn binary_streaming_matches_json_streaming() {
    let (_service, _server, addr) = start_node();
    let m = 8usize;
    let dims: Vec<Vec<f64>> = (0..2)
        .map(|k| {
            (0..48)
                .map(|t| ((t + k * 3) as f64 * 0.31).sin() + 0.02 * ((t * 5 + k) % 11) as f64)
                .collect()
        })
        .collect();
    let initial = 32usize;
    let series_json = |start: usize, len: usize| {
        Json::Arr(
            dims.iter()
                .map(|d| {
                    Json::Arr(
                        d[start..start + len]
                            .iter()
                            .map(|&v| Json::num(v))
                            .collect(),
                    )
                })
                .collect(),
        )
    };
    let series_chunks = |start: usize, len: usize| -> Vec<Chunk> {
        dims.iter()
            .map(|d| Chunk::F64(d[start..start + len].to_vec()))
            .collect()
    };

    let mut json_conn = WireConn::connect(&addr, None, WirePreference::Json).expect("connect");
    let mut bin_conn = WireConn::connect(&addr, None, WirePreference::Auto).expect("connect");
    assert!(bin_conn.is_binary());

    let json_open = json_conn
        .request(&Message::json(Json::obj(vec![
            ("op", Json::str("stream_open")),
            ("m", Json::num(m as f64)),
            ("mode", Json::str("fp16")),
            ("reference", series_json(0, dims[0].len())),
            ("query", series_json(0, initial)),
        ])))
        .expect("json open");
    let mut open_chunks = series_chunks(0, dims[0].len());
    open_chunks.append(&mut series_chunks(0, initial));
    let bin_open = bin_conn
        .request(&Message {
            json: Json::obj(vec![
                ("op", Json::str("stream_open")),
                ("m", Json::num(m as f64)),
                ("mode", Json::str("fp16")),
                ("reference_chunks", Json::num(dims.len() as f64)),
                ("query_chunks", Json::num(dims.len() as f64)),
            ]),
            chunks: open_chunks,
        })
        .expect("binary open");
    let session_of = |reply: &Message| {
        assert_eq!(
            reply.json.get("ok").and_then(Json::as_bool),
            Some(true),
            "{:?}",
            reply.json.get("error")
        );
        reply
            .json
            .get("session")
            .and_then(|s| s.get("session"))
            .and_then(Json::as_u64)
            .expect("session id")
    };
    let json_session = session_of(&json_open);
    let bin_session = session_of(&bin_open);

    let mut at = initial;
    while at < dims[0].len() {
        let len = 8.min(dims[0].len() - at);
        let json_reply = json_conn
            .request(&Message::json(Json::obj(vec![
                ("op", Json::str("stream_append")),
                ("session", Json::num(json_session as f64)),
                ("side", Json::str("query")),
                ("samples", series_json(at, len)),
            ])))
            .expect("json append");
        let bin_reply = bin_conn
            .request(&Message {
                json: Json::obj(vec![
                    ("op", Json::str("stream_append")),
                    ("session", Json::num(bin_session as f64)),
                    ("side", Json::str("query")),
                    ("samples_chunks", Json::num(dims.len() as f64)),
                ]),
                chunks: series_chunks(at, len),
            })
            .expect("binary append");
        at += len;
        for key in ["reused_segments", "fresh_segments", "reused_precalc"] {
            assert_eq!(
                json_reply.json.get(key).map(Json::to_string),
                bin_reply.json.get(key).map(Json::to_string),
                "append accounting '{key}' diverged at sample {at}"
            );
        }
        assert_eq!(
            json_reply
                .json
                .get("session")
                .and_then(|s| s.get("n_query"))
                .map(Json::to_string),
            bin_reply
                .json
                .get("session")
                .and_then(|s| s.get("n_query"))
                .map(Json::to_string),
            "profile columns diverged at sample {at}"
        );
    }
}

/// A frame declaring an absurd chunk count (far beyond what it carries)
/// gets a typed error — not a count-sized allocation that aborts the
/// server — and declared counts must also match the frame exactly:
/// extra undeclared chunks are rejected, not silently dropped.
#[test]
fn binary_chunk_counts_must_match_the_frame() {
    let (_service, _server, addr) = start_node();
    let mut conn = WireConn::connect(&addr, None, WirePreference::Auto).expect("connect");
    assert!(conn.is_binary());

    // Declared count is client-controlled: 1e15 chunks "declared", one
    // carried. Must be a typed error, and the connection keeps serving.
    let reply = conn
        .request(&Message {
            json: Json::obj(vec![
                ("op", Json::str("stream_open")),
                ("m", Json::num(8.0)),
                ("reference_chunks", Json::num(1e15)),
            ]),
            chunks: vec![Chunk::F64(vec![0.0; 16])],
        })
        .expect("request survives");
    assert_eq!(reply.json.get("ok").and_then(Json::as_bool), Some(false));
    let error = reply.json.get("error").and_then(Json::as_str).unwrap_or("");
    assert!(error.contains("fewer chunks"), "{error}");

    // Extra chunks beyond the declared counts are an error, mirroring
    // parse_payload's trailing-bytes rejection.
    let samples: Vec<f64> = (0..32).map(|t| (t as f64 * 0.3).sin()).collect();
    let reply = conn
        .request(&Message {
            json: Json::obj(vec![
                ("op", Json::str("stream_open")),
                ("m", Json::num(8.0)),
                ("reference_chunks", Json::num(1.0)),
            ]),
            chunks: vec![Chunk::F64(samples.clone()), Chunk::F64(samples.clone())],
        })
        .expect("request survives");
    assert_eq!(reply.json.get("ok").and_then(Json::as_bool), Some(false));
    let error = reply.json.get("error").and_then(Json::as_str).unwrap_or("");
    assert!(error.contains("more chunks"), "{error}");

    // The same connection still opens a well-formed session afterwards.
    let reply = conn
        .request(&Message {
            json: Json::obj(vec![
                ("op", Json::str("stream_open")),
                ("m", Json::num(8.0)),
                ("reference_chunks", Json::num(1.0)),
            ]),
            chunks: vec![Chunk::F64(samples.clone())],
        })
        .expect("request survives");
    assert_eq!(
        reply.json.get("ok").and_then(Json::as_bool),
        Some(true),
        "{:?}",
        reply.json.get("error")
    );
    let session = reply
        .json
        .get("session")
        .and_then(|s| s.get("session"))
        .and_then(Json::as_u64)
        .expect("session id");

    // stream_append enforces the same two rules.
    for (declared, carried, needle) in
        [(1e15, 1usize, "fewer chunks"), (1.0, 2usize, "more chunks")]
    {
        let reply = conn
            .request(&Message {
                json: Json::obj(vec![
                    ("op", Json::str("stream_append")),
                    ("session", Json::num(session as f64)),
                    ("samples_chunks", Json::num(declared)),
                ]),
                chunks: vec![Chunk::F64(samples.clone()); carried],
            })
            .expect("request survives");
        assert_eq!(reply.json.get("ok").and_then(Json::as_bool), Some(false));
        let error = reply.json.get("error").and_then(Json::as_str).unwrap_or("");
        assert!(error.contains(needle), "{error}");
    }
}

/// Upgrade, then read/write raw frames on the socket — the corruption
/// harness needs byte-level control the `WireConn` client hides.
fn upgrade_raw(addr: &str) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream.try_clone().expect("clone");
    writeln!(
        writer,
        "{}",
        Json::obj(vec![
            ("op", Json::str("wire_upgrade")),
            ("version", Json::num(1.0)),
        ])
    )
    .expect("upgrade write");
    let mut line = String::new();
    reader.read_line(&mut line).expect("upgrade reply");
    let reply = Json::parse(line.trim()).expect("upgrade json");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    (reader, stream)
}

fn ping_frame() -> Vec<u8> {
    FrameCodec::new()
        .encode(
            &Message::json(Json::obj(vec![("op", Json::str("ping"))])),
            true,
        )
        .expect("encode")
        .to_vec()
}

/// A flipped checksum gets a typed error reply and the connection keeps
/// serving; an oversized length prefix gets a typed error and a close;
/// the server survives both and counts each frame error.
#[test]
fn corrupted_frames_get_typed_errors_and_the_server_survives() {
    let (service, _server, addr) = start_node();
    let (mut reader, mut writer) = upgrade_raw(&addr);
    let mut codec = FrameCodec::new();

    // Baseline: a valid ping round-trips.
    writer.write_all(&ping_frame()).expect("write");
    let (reply, _) = codec.read(&mut reader).expect("read").expect("frame");
    assert_eq!(reply.json.get("ok").and_then(Json::as_bool), Some(true));

    // Corrupt payload: flip the checksum's last byte. Typed error, then
    // the very same connection still serves.
    let mut corrupt = ping_frame();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0xFF;
    writer.write_all(&corrupt).expect("write");
    let (reply, _) = codec.read(&mut reader).expect("read").expect("frame");
    assert_eq!(reply.json.get("ok").and_then(Json::as_bool), Some(false));
    let error = reply.json.get("error").and_then(Json::as_str).unwrap_or("");
    assert!(error.contains("corrupt"), "{error}");
    writer.write_all(&ping_frame()).expect("write");
    let (reply, _) = codec.read(&mut reader).expect("read").expect("frame");
    assert_eq!(
        reply.json.get("ok").and_then(Json::as_bool),
        Some(true),
        "connection must keep serving after a corrupt frame"
    );

    // Lost framing: an oversized length prefix. Typed error, then close.
    let mut oversized = ping_frame();
    oversized[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
    writer.write_all(&oversized).expect("write");
    let (reply, _) = codec.read(&mut reader).expect("read").expect("frame");
    assert_eq!(reply.json.get("ok").and_then(Json::as_bool), Some(false));
    let error = reply.json.get("error").and_then(Json::as_str).unwrap_or("");
    assert!(error.contains("framing lost"), "{error}");
    assert!(
        matches!(codec.read(&mut reader), Ok(None)),
        "server must close after lost framing"
    );

    assert!(
        service.stats().wire_frame_errors >= 2,
        "both injections must be counted"
    );

    // The server itself is unharmed: a fresh connection works.
    let (tiles, _, _) = exec_tiles(&addr, "fp16", WirePreference::Auto);
    assert_eq!(tiles.len(), 2);
}

/// A frame truncated mid-payload (client dies) severs only that
/// connection; the server keeps accepting.
#[test]
fn truncated_frame_kills_only_its_connection() {
    let (_service, _server, addr) = start_node();
    {
        let (mut reader, mut writer) = upgrade_raw(&addr);
        let frame = ping_frame();
        writer.write_all(&frame[..frame.len() / 2]).expect("write");
        writer
            .shutdown(std::net::Shutdown::Write)
            .expect("shutdown");
        let mut rest = Vec::new();
        // The server reads EOF mid-frame and closes without a reply.
        std::io::Read::read_to_end(&mut reader, &mut rest).expect("drain");
        assert!(rest.is_empty(), "no reply to an unfinished frame");
    }
    let (tiles, _, _) = exec_tiles(&addr, "fp32", WirePreference::Auto);
    assert_eq!(tiles.len(), 2);
}

/// A version the server does not speak is declined — and the connection
/// stays on JSON lines, still serving.
#[test]
fn unsupported_upgrade_version_falls_back_to_json() {
    let (_service, _server, addr) = start_node();
    let stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    writeln!(
        writer,
        "{}",
        Json::obj(vec![
            ("op", Json::str("wire_upgrade")),
            ("version", Json::num(99.0)),
        ])
    )
    .expect("write");
    let mut line = String::new();
    reader.read_line(&mut line).expect("reply");
    let reply = Json::parse(line.trim()).expect("json");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    writeln!(writer, "{}", Json::obj(vec![("op", Json::str("ping"))])).expect("write");
    line.clear();
    reader.read_line(&mut line).expect("reply");
    let reply = Json::parse(line.trim()).expect("json");
    assert_eq!(
        reply.get("ok").and_then(Json::as_bool),
        Some(true),
        "connection must keep speaking JSON after a declined upgrade"
    );
}

/// The labeled byte counters reach the metrics page with encoding and op
/// labels, and the stats op totals them.
#[test]
fn wire_bytes_are_surfaced_in_metrics_and_stats() {
    let (service, _server, addr) = start_node();
    let _ = exec_tiles(&addr, "fp32", WirePreference::Auto);
    let text = service.metrics_text();
    assert!(
        text.contains("mdmp_wire_bytes_sent_total{encoding=\"binary\",op=\"tile_exec\"}"),
        "missing labeled sent counter:\n{text}"
    );
    assert!(
        text.contains("mdmp_wire_bytes_received_total{encoding=\"binary\",op=\"tile_exec\"}"),
        "missing labeled received counter:\n{text}"
    );
    assert!(text.contains("mdmp_wire_binary_sessions"));
    let stats = service.stats();
    assert!(stats.wire_bytes_sent > 0);
    assert!(stats.wire_bytes_received > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// encode ∘ decode is the identity on arbitrary bit patterns — NaN
    /// payloads, infinities, `-0.0`, subnormals — at both widths, with
    /// and without narrowing.
    #[test]
    fn frame_round_trip_is_identity(
        bits in proptest::collection::vec(any::<u64>(), 0..96),
        idx in proptest::collection::vec(any::<i64>(), 0..96),
        narrow in any::<bool>(),
    ) {
        let plane: Vec<f64> = bits.iter().copied().map(f64::from_bits).collect();
        let msg = Message {
            json: Json::obj(vec![("op", Json::str("tile_exec"))]),
            chunks: vec![Chunk::F64(plane), Chunk::I64(idx.clone())],
        };
        let mut codec = FrameCodec::new();
        let frame = codec.encode(&msg, narrow).expect("encode").to_vec();
        let mut reader = BufReader::new(&frame[..]);
        let (back, n) = codec.read(&mut reader).expect("read").expect("frame");
        prop_assert_eq!(n as usize, frame.len());
        prop_assert_eq!(&back.json, &msg.json);
        let back_plane = back.chunks[0].clone().into_f64().expect("float chunk");
        let back_bits: Vec<u64> = back_plane.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(back_bits, bits);
        prop_assert_eq!(back.chunks[1].clone().into_i64().expect("index chunk"), idx);
    }

    /// Special values survive narrowing bit-exactly alongside ordinary
    /// samples.
    #[test]
    fn special_values_round_trip_narrowed(
        extra in proptest::collection::vec(-1e4f64..1e4, 0..32),
    ) {
        let mut plane = vec![
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            -0.0,
            f64::MIN_POSITIVE,
            5e-324,
            f64::from_bits(0x7FF0_0000_0000_0001),
        ];
        plane.extend(extra);
        let msg = Message {
            json: Json::obj(vec![("op", Json::str("stream_append"))]),
            chunks: vec![Chunk::F64(plane.clone())],
        };
        let mut codec = FrameCodec::new();
        let frame = codec.encode(&msg, true).expect("encode").to_vec();
        let mut reader = BufReader::new(&frame[..]);
        let (back, _) = codec.read(&mut reader).expect("read").expect("frame");
        let back_plane = back.chunks[0].clone().into_f64().expect("float chunk");
        prop_assert_eq!(back_plane.len(), plane.len());
        for (a, b) in plane.iter().zip(&back_plane) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "{} vs {}", a, b);
        }
    }
}

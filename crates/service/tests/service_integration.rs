//! End-to-end service tests: backpressure under flooding, precalc-cache
//! hits across jobs, streaming sessions vs batch FP64, and graceful
//! drain on shutdown.

use mdmp_core::{run_with_mode, MdmpConfig};
use mdmp_data::MultiDimSeries;
use mdmp_gpu_sim::GpuSystem;
use mdmp_precision::PrecisionMode;
use mdmp_service::{AppendSide, JobSpec, JobState, Priority, Service, ServiceConfig, SubmitError};
use std::sync::Arc;
use std::time::Duration;

fn wave(offset: usize, n: usize, d: usize) -> Arc<MultiDimSeries> {
    let dims = (0..d)
        .map(|k| {
            (0..n)
                .map(|t| {
                    ((t + offset) as f64 * 0.13 + k as f64).sin()
                        + 0.03 * ((t * 7 + k * 3) % 13) as f64
                })
                .collect()
        })
        .collect();
    Arc::new(MultiDimSeries::from_dims(dims))
}

#[test]
fn flooding_past_the_queue_bound_is_rejected_not_buffered() {
    let svc = Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 2,
        devices: 1,
        ..ServiceConfig::default()
    });
    // Sizeable jobs: the single worker cannot drain them at submission
    // speed, so the queue must fill and admission control must kick in.
    let reference = wave(0, 2048, 4);
    let query = wave(57, 2048, 4);
    let mut accepted = Vec::new();
    let mut rejections = 0usize;
    for _ in 0..6 {
        let spec = JobSpec::in_memory(
            Arc::clone(&reference),
            Arc::clone(&query),
            32,
            PrecisionMode::Fp32,
        );
        match svc.submit(spec) {
            Ok(id) => accepted.push(id),
            Err(SubmitError::QueueFull { capacity }) => {
                assert_eq!(capacity, 2);
                rejections += 1;
            }
            Err(other) => panic!("unexpected submit error: {other}"),
        }
    }
    assert!(rejections > 0, "flood must trip the queue bound");
    assert!(svc.stats().jobs_rejected as usize == rejections);
    // Accepted jobs still finish; rejected ones never entered the system.
    for id in &accepted {
        let status = svc.wait(*id, Duration::from_secs(120)).unwrap();
        assert_eq!(status.state, JobState::Done, "{:?}", status.error);
    }
    let stats = svc.stats();
    assert_eq!(stats.jobs_completed as usize, accepted.len());
    assert_eq!(stats.queue_depth, 0);
    svc.shutdown(true);
}

#[test]
fn repeated_job_reports_precalc_cache_hits_and_identical_profile() {
    let svc = Service::start(ServiceConfig {
        workers: 2,
        devices: 2,
        ..ServiceConfig::default()
    });
    let reference = wave(0, 512, 2);
    let query = wave(91, 512, 2);
    let spec = |mode| {
        let mut s = JobSpec::in_memory(Arc::clone(&reference), Arc::clone(&query), 16, mode);
        s.tiles = 4;
        s
    };
    let cold = svc.submit(spec(PrecisionMode::Fp16)).unwrap();
    let cold = svc.wait(cold, Duration::from_secs(120)).unwrap();
    assert_eq!(cold.state, JobState::Done, "{:?}", cold.error);
    let cold = cold.outcome.unwrap();
    assert_eq!((cold.precalc_hits, cold.precalc_misses), (0, 4));

    let warm = svc.submit(spec(PrecisionMode::Fp16)).unwrap();
    let warm = svc.wait(warm, Duration::from_secs(120)).unwrap();
    let warm = warm.outcome.unwrap();
    // Acceptance: the second identical submission hits the precalc cache
    // on every tile, and the profile is bit-identical.
    assert_eq!((warm.precalc_hits, warm.precalc_misses), (4, 0));
    assert_eq!(*warm.profile, *cold.profile);
    let stats = svc.stats();
    assert!(stats.precalc_cache_hits >= 4);
    assert!(stats.precalc_cache_hit_rate > 0.0);

    // A different mode with the same precalc format (FP16 + Kahan differs;
    // FP8 shares FP32 precalc with Mixed) keyed separately or shared per
    // the cache-key rules: Fp16c must MISS (different Kahan flag).
    let kahan = svc.submit(spec(PrecisionMode::Fp16c)).unwrap();
    let kahan = svc.wait(kahan, Duration::from_secs(120)).unwrap();
    let kahan = kahan.outcome.unwrap();
    assert_eq!((kahan.precalc_hits, kahan.precalc_misses), (0, 4));
    svc.shutdown(true);
}

#[test]
fn streaming_session_appends_match_batch_fp64() {
    let svc = Service::start(ServiceConfig {
        workers: 1,
        devices: 1,
        ..ServiceConfig::default()
    });
    let m = 16;
    let full_query = wave(33, 384, 2);
    let reference = wave(0, 384, 2);
    let cfg = MdmpConfig::new(m, PrecisionMode::Fp64);

    // Open the session over a prefix of the query, then append the rest in
    // two uneven chunks.
    let prefix = 200;
    let take = |series: &MultiDimSeries, lo: usize, hi: usize| {
        MultiDimSeries::from_dims(
            (0..series.dims())
                .map(|k| series.dim(k)[lo..hi].to_vec())
                .collect(),
        )
    };
    let session = svc
        .sessions
        .open(
            (*reference).clone(),
            take(&full_query, 0, prefix),
            cfg.clone(),
        )
        .unwrap();
    for (lo, hi) in [(prefix, prefix + 100), (prefix + 100, 384)] {
        let chunk = take(&full_query, lo, hi);
        let samples: Vec<Vec<f64>> = (0..chunk.dims()).map(|k| chunk.dim(k).to_vec()).collect();
        svc.sessions
            .append(session.id, AppendSide::Query, &samples)
            .unwrap();
    }
    let streamed = svc.sessions.profile(session.id).unwrap();

    let mut system = GpuSystem::homogeneous(svc.config().device.clone(), 1);
    let batch = run_with_mode(&reference, &full_query, &cfg, &mut system).unwrap();
    assert_eq!(streamed.n_query(), batch.profile.n_query());
    // Same contract as core's own streaming tests: values agree to 1e-7
    // (the incremental QT recurrence rounds differently at chunk
    // boundaries), match indices exactly.
    for k in 0..streamed.dims() {
        for j in 0..streamed.n_query() {
            assert!(
                (streamed.value(j, k) - batch.profile.value(j, k)).abs() < 1e-7,
                "mismatch at query {j} dim {k}: {} vs {}",
                streamed.value(j, k),
                batch.profile.value(j, k)
            );
            assert_eq!(streamed.index(j, k), batch.profile.index(j, k));
        }
    }
    svc.sessions.close(session.id);
    svc.shutdown(true);
}

#[test]
fn graceful_shutdown_drains_every_admitted_job() {
    let svc = Service::start(ServiceConfig {
        workers: 2,
        queue_capacity: 32,
        devices: 2,
        ..ServiceConfig::default()
    });
    let reference = wave(0, 768, 2);
    let query = wave(41, 768, 2);
    let ids: Vec<_> = (0..8)
        .map(|i| {
            let mut spec = JobSpec::in_memory(
                Arc::clone(&reference),
                Arc::clone(&query),
                16,
                PrecisionMode::Mixed,
            );
            spec.priority = if i % 3 == 0 {
                Priority::High
            } else {
                Priority::Normal
            };
            svc.submit(spec).unwrap()
        })
        .collect();
    // Drain: every admitted job must finish; none may be dropped.
    svc.shutdown(true);
    for id in ids {
        let status = svc.status(id).unwrap();
        assert_eq!(status.state, JobState::Done, "{:?}", status.error);
    }
    let stats = svc.stats();
    assert_eq!(stats.jobs_completed, 8);
    assert_eq!(stats.jobs_cancelled, 0);
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.jobs_running, 0);
    // New work after shutdown is refused.
    let late = JobSpec::in_memory(reference, query, 16, PrecisionMode::Fp64);
    assert!(matches!(svc.submit(late), Err(SubmitError::ShuttingDown)));
}

#[test]
fn abort_shutdown_cancels_queued_jobs() {
    let svc = Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 16,
        devices: 1,
        ..ServiceConfig::default()
    });
    let reference = wave(0, 1024, 4);
    let query = wave(13, 1024, 4);
    let ids: Vec<_> = (0..6)
        .map(|_| {
            svc.submit(JobSpec::in_memory(
                Arc::clone(&reference),
                Arc::clone(&query),
                32,
                PrecisionMode::Fp32,
            ))
            .unwrap()
        })
        .collect();
    // Let the worker pick up its first job so the abort has something
    // in flight to finish.
    while svc.stats().jobs_running == 0 && svc.stats().jobs_completed == 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    svc.shutdown(false);
    let mut done = 0;
    let mut cancelled = 0;
    for id in ids {
        match svc.status(id).unwrap().state {
            JobState::Done => done += 1,
            JobState::Cancelled => cancelled += 1,
            other => panic!("job left in state {other}"),
        }
    }
    // The single worker finishes what it started; the rest are cancelled.
    assert!(done >= 1);
    assert_eq!(done + cancelled, 6);
    let stats = svc.stats();
    assert_eq!(stats.jobs_cancelled as usize, cancelled);
}

//! Synthetic genome sequences for the Genome-in-a-Bottle case study (§VI-B).
//!
//! The paper encodes genome sequences as integer-valued time series
//! (A→1, C→2, T→3, G→4) and treats 16 chromosomes as the 16 dimensions of a
//! multi-dimensional series (n = 2¹⁸, d = 2⁴, m = 2⁷ — m chosen to match the
//! shortest gene length). The generator produces random base sequences with
//! repeated "gene" motifs copied (with point mutations) to several loci, so
//! matrix-profile self-similarity is recoverable exactly as in the real
//! data.

use crate::rng::seeded;
use crate::series::MultiDimSeries;
use rand::rngs::StdRng;
use rand::Rng;

/// A DNA base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Base {
    /// Adenine.
    A,
    /// Cytosine.
    C,
    /// Thymine.
    T,
    /// Guanine.
    G,
}

impl Base {
    /// All four bases.
    pub const ALL: [Base; 4] = [Base::A, Base::C, Base::T, Base::G];

    /// The paper's encoding: A→1, C→2, T→3, G→4.
    pub fn encode(self) -> f64 {
        match self {
            Base::A => 1.0,
            Base::C => 2.0,
            Base::T => 3.0,
            Base::G => 4.0,
        }
    }

    /// Decode an encoded value (nearest base).
    ///
    /// # Panics
    /// Panics if the value is not in `[0.5, 4.5)`.
    pub fn decode(v: f64) -> Base {
        match v.round() as i64 {
            1 => Base::A,
            2 => Base::C,
            3 => Base::T,
            4 => Base::G,
            other => panic!("value {other} is not a valid base encoding"),
        }
    }

    /// Character representation.
    pub fn to_char(self) -> char {
        match self {
            Base::A => 'A',
            Base::C => 'C',
            Base::T => 'T',
            Base::G => 'G',
        }
    }
}

/// Encode a base string into a time-series vector.
pub fn encode_sequence(bases: &[Base]) -> Vec<f64> {
    bases.iter().map(|b| b.encode()).collect()
}

/// Parse a textual sequence ("ACGT…") into bases; non-ACGT characters are
/// rejected.
pub fn parse_sequence(s: &str) -> Result<Vec<Base>, String> {
    s.chars()
        .map(|c| match c.to_ascii_uppercase() {
            'A' => Ok(Base::A),
            'C' => Ok(Base::C),
            'T' => Ok(Base::T),
            'G' => Ok(Base::G),
            other => Err(format!("invalid base character '{other}'")),
        })
        .collect()
}

/// Configuration of a synthetic genome dataset.
#[derive(Debug, Clone)]
pub struct GenomeConfig {
    /// Samples per chromosome channel (paper: n = 2¹⁸ segments).
    pub len: usize,
    /// Number of chromosome channels (paper: d = 2⁴ = 16).
    pub channels: usize,
    /// Length of the repeated gene motifs (paper: m = 2⁷ = 128, the shortest
    /// gene length in practice).
    pub gene_len: usize,
    /// Number of gene motifs; each is copied to 2 loci per channel.
    pub genes: usize,
    /// Point-mutation probability applied to gene copies.
    pub mutation_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl GenomeConfig {
    /// §VI-B parameters at reproduction scale (`len` shrunk from 2¹⁸).
    pub fn default_case_study(len: usize) -> GenomeConfig {
        GenomeConfig {
            len,
            channels: 16,
            gene_len: 128,
            genes: 8,
            mutation_rate: 0.02,
            seed: 0x6E0E,
        }
    }
}

/// A generated genome dataset: encoded series plus the gene copy locations.
#[derive(Debug, Clone)]
pub struct GenomeDataset {
    /// The encoded 16-channel series.
    pub series: MultiDimSeries,
    /// Per channel: (gene id, start position) of every inserted copy.
    pub gene_copies: Vec<Vec<(usize, usize)>>,
}

/// Generate a synthetic genome dataset.
pub fn generate(cfg: &GenomeConfig) -> GenomeDataset {
    assert!(cfg.gene_len > 0 && cfg.len > 4 * cfg.gene_len && cfg.channels > 0);
    let mut rng = seeded(cfg.seed);
    let genes: Vec<Vec<Base>> = (0..cfg.genes)
        .map(|_| random_bases(&mut rng, cfg.gene_len))
        .collect();

    let mut gene_copies = Vec::with_capacity(cfg.channels);
    let mut dims = Vec::with_capacity(cfg.channels);
    for _ in 0..cfg.channels {
        let mut seq = random_bases(&mut rng, cfg.len);
        let mut copies = Vec::new();
        for (gid, gene) in genes.iter().enumerate() {
            for _ in 0..2 {
                let start = rng.gen_range(0..cfg.len - cfg.gene_len);
                for (t, &b) in gene.iter().enumerate() {
                    seq[start + t] = if rng.gen::<f64>() < cfg.mutation_rate {
                        Base::ALL[rng.gen_range(0..4usize)]
                    } else {
                        b
                    };
                }
                copies.push((gid, start));
            }
        }
        copies.sort_unstable_by_key(|&(_, s)| s);
        gene_copies.push(copies);
        dims.push(encode_sequence(&seq));
    }
    GenomeDataset {
        series: MultiDimSeries::from_dims(dims),
        gene_copies,
    }
}

fn random_bases(rng: &mut StdRng, len: usize) -> Vec<Base> {
    (0..len)
        .map(|_| Base::ALL[rng.gen_range(0..4usize)])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_matches_paper() {
        assert_eq!(Base::A.encode(), 1.0);
        assert_eq!(Base::C.encode(), 2.0);
        assert_eq!(Base::T.encode(), 3.0);
        assert_eq!(Base::G.encode(), 4.0);
        for b in Base::ALL {
            assert_eq!(Base::decode(b.encode()), b);
        }
    }

    #[test]
    fn parse_and_chars_round_trip() {
        let seq = parse_sequence("ACgtTA").unwrap();
        let s: String = seq.iter().map(|b| b.to_char()).collect();
        assert_eq!(s, "ACGTTA");
        assert!(parse_sequence("ACGX").is_err());
    }

    #[test]
    fn generated_values_are_valid_encodings() {
        let cfg = GenomeConfig {
            len: 2000,
            channels: 4,
            gene_len: 64,
            genes: 2,
            mutation_rate: 0.02,
            seed: 5,
        };
        let ds = generate(&cfg);
        assert_eq!(ds.series.dims(), 4);
        assert_eq!(ds.series.len(), 2000);
        for k in 0..4 {
            for &v in ds.series.dim(k) {
                assert!((1.0..=4.0).contains(&v));
                assert_eq!(v, v.round());
            }
        }
    }

    #[test]
    fn gene_copies_are_similar_pairs() {
        let cfg = GenomeConfig {
            len: 4000,
            channels: 2,
            gene_len: 100,
            genes: 1,
            mutation_rate: 0.0,
            seed: 11,
        };
        let ds = generate(&cfg);
        let copies = &ds.gene_copies[0];
        // One gene × two copies per channel.
        assert_eq!(copies.len(), 2);
        let (_, s1) = copies[0];
        let (_, s2) = copies[1];
        let d0 = ds.series.dim(0);
        // Without mutations, non-overlapping copies are identical.
        if s1.abs_diff(s2) >= cfg.gene_len {
            for t in 0..cfg.gene_len {
                assert_eq!(d0[s1 + t], d0[s2 + t]);
            }
        }
    }

    #[test]
    fn mutation_rate_perturbs_copies() {
        let cfg = GenomeConfig {
            len: 4000,
            channels: 1,
            gene_len: 200,
            genes: 1,
            mutation_rate: 0.5,
            seed: 12,
        };
        let ds = generate(&cfg);
        let copies = &ds.gene_copies[0];
        let (_, s1) = copies[0];
        let (_, s2) = copies[1];
        if s1.abs_diff(s2) >= cfg.gene_len {
            let d0 = ds.series.dim(0);
            let diff = (0..cfg.gene_len)
                .filter(|&t| d0[s1 + t] != d0[s2 + t])
                .count();
            assert!(diff > 20, "heavy mutation should perturb many positions");
        }
    }

    #[test]
    #[should_panic(expected = "not a valid base encoding")]
    fn decode_rejects_garbage() {
        let _ = Base::decode(9.0);
    }
}

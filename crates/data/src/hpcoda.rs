//! Synthetic stand-in for the HPC-ODA application-classification dataset
//! (§VI-A).
//!
//! The real dataset contains performance-counter time series (branch
//! instructions, cache misses, …) recorded at 1 Hz on 16 compute nodes while
//! labelled benchmarks (HPL, AMG, LAMMPS, …) run. The generator reproduces
//! its *structure*: 16 sensors whose joint signature differs per application
//! class, a phase schedule of applications with idle gaps, and per-sensor
//! noise. The nearest-neighbour classifier of Fig. 8/9 works on exactly
//! these properties.

use crate::rng::{gaussian, seeded};
use crate::series::MultiDimSeries;
use rand::Rng;
use std::f64::consts::TAU;

/// The application classes of the HPC-ODA Application Classification segment
/// (legend of Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AppClass {
    /// Idle / no application.
    None,
    /// Kripke transport proxy.
    Kripke,
    /// LAMMPS molecular dynamics.
    Lammps,
    /// HPL / Linpack.
    Linpack,
    /// AMG algebraic multigrid.
    Amg,
    /// PENNANT hydrodynamics.
    Pennant,
    /// Quicksilver Monte Carlo.
    Quicksilver,
}

impl AppClass {
    /// All classes.
    pub const ALL: [AppClass; 7] = [
        AppClass::None,
        AppClass::Kripke,
        AppClass::Lammps,
        AppClass::Linpack,
        AppClass::Amg,
        AppClass::Pennant,
        AppClass::Quicksilver,
    ];

    /// Display label as in Fig. 8.
    pub fn label(self) -> &'static str {
        match self {
            AppClass::None => "None",
            AppClass::Kripke => "Kripke",
            AppClass::Lammps => "LAMMPS",
            AppClass::Linpack => "linpack",
            AppClass::Amg => "AMG",
            AppClass::Pennant => "PENNANT",
            AppClass::Quicksilver => "Quicksilver",
        }
    }

    fn id(self) -> usize {
        match self {
            AppClass::None => 0,
            AppClass::Kripke => 1,
            AppClass::Lammps => 2,
            AppClass::Linpack => 3,
            AppClass::Amg => 4,
            AppClass::Pennant => 5,
            AppClass::Quicksilver => 6,
        }
    }

    /// Deterministic per-sensor signature of this class: (base level,
    /// oscillation amplitude, oscillation period in samples).
    ///
    /// Idle (`None`) is near-zero on every sensor; each application has a
    /// distinctive per-sensor fingerprint derived from a hash of
    /// (class, sensor).
    pub fn signature(self, sensor: usize) -> (f64, f64, f64) {
        if self == AppClass::None {
            // Idle nodes still show a weak OS-noise pattern (daemon wakeups,
            // timer ticks) — enough structure for the classifier to learn
            // the idle class, as it does on the real HPC-ODA traces.
            let h = splitmix(sensor as u64 * 31 + 7);
            return (0.08, 0.12, 24.0 + 24.0 * unit(h));
        }
        let h = splitmix(self.id() as u64 * 1469 + sensor as u64 * 9973);
        let base = 0.3 + 0.7 * unit(h);
        let amp = 0.3 + 0.5 * unit(splitmix(h));
        let period = 8.0 + 24.0 * unit(splitmix(h ^ 0xABCD));
        (base, amp, period)
    }

    /// Waveform value of this class on a sensor at phase angle `phase`
    /// (radians of the fundamental).
    ///
    /// The matrix profile z-normalizes every segment, which erases the base
    /// level and the amplitude — so the class fingerprint must live in the
    /// *shape*: each (class, sensor) mixes the fundamental with a second
    /// harmonic and a clipped (square-ish) component with class-specific
    /// weights.
    pub fn waveform(self, sensor: usize, phase: f64) -> f64 {
        let h = splitmix(self.id() as u64 * 7919 + sensor as u64 * 271);
        let w2 = unit(h);
        let w_sq = unit(splitmix(h));
        let phi = unit(splitmix(h ^ 0x5A5A)) * std::f64::consts::TAU;
        let fundamental = phase.sin();
        let harmonic = w2 * (2.0 * phase + phi).sin();
        let square = w_sq * (3.0 * phase.sin()).clamp(-1.0, 1.0);
        fundamental + harmonic + square
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Configuration of the synthetic HPC-ODA-like dataset.
#[derive(Debug, Clone)]
pub struct HpcOdaConfig {
    /// Number of sensors (the paper selects 16 distinct sensors).
    pub sensors: usize,
    /// Samples per application phase (1 Hz sampling in the original).
    pub phase_len: usize,
    /// Number of scheduled phases.
    pub phases: usize,
    /// Per-sensor measurement noise (σ).
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl HpcOdaConfig {
    /// A configuration mirroring the §VI-A setup at reproducible scale.
    pub fn default_case_study() -> HpcOdaConfig {
        HpcOdaConfig {
            sensors: 16,
            phase_len: 256,
            phases: 48,
            noise: 0.08,
            seed: 0x0DA,
        }
    }

    /// Total samples.
    pub fn total_len(&self) -> usize {
        self.phase_len * self.phases
    }
}

/// A labelled multi-sensor dataset.
#[derive(Debug, Clone)]
pub struct HpcOdaDataset {
    /// The sensor time series (dimension = sensor).
    pub series: MultiDimSeries,
    /// Ground-truth class per sample.
    pub labels: Vec<AppClass>,
    /// The phase schedule (class per phase).
    pub schedule: Vec<AppClass>,
    /// Samples per phase.
    pub phase_len: usize,
}

impl HpcOdaDataset {
    /// Split into (reference, query) halves along time, as the paper splits
    /// the day of operational data into two half-days.
    pub fn split_half(&self) -> (HpcOdaDataset, HpcOdaDataset) {
        let half = self.series.len() / 2;
        let first = HpcOdaDataset {
            series: self.series.window(0, half),
            labels: self.labels[..half].to_vec(),
            schedule: self.schedule.clone(),
            phase_len: self.phase_len,
        };
        let second = HpcOdaDataset {
            series: self.series.window(half, self.series.len() - half),
            labels: self.labels[half..].to_vec(),
            schedule: self.schedule.clone(),
            phase_len: self.phase_len,
        };
        (first, second)
    }
}

/// Generate a labelled dataset per the configuration.
pub fn generate(cfg: &HpcOdaConfig) -> HpcOdaDataset {
    assert!(cfg.sensors > 0 && cfg.phase_len > 1 && cfg.phases > 0);
    let mut rng = seeded(cfg.seed);
    let len = cfg.total_len();
    let mut series = MultiDimSeries::zeros(cfg.sensors, len);
    // Schedule: random classes, with idle gaps interspersed so the timeline
    // looks like Fig. 8 (benchmarks separated by None).
    let mut schedule = Vec::with_capacity(cfg.phases);
    for p in 0..cfg.phases {
        if p % 4 == 3 {
            schedule.push(AppClass::None);
        } else {
            let apps = &AppClass::ALL[1..];
            schedule.push(apps[rng.gen_range(0..apps.len())]);
        }
    }
    let mut labels = Vec::with_capacity(len);
    for &class in &schedule {
        labels.extend(std::iter::repeat_n(class, cfg.phase_len));
    }
    for sensor in 0..cfg.sensors {
        let dim = series.dim_mut(sensor);
        for (p, &class) in schedule.iter().enumerate() {
            let (base, amp, period) = class.signature(sensor);
            let start = p * cfg.phase_len;
            for t in 0..cfg.phase_len {
                let phase = TAU * (t as f64) / period;
                dim[start + t] =
                    base + amp * class.waveform(sensor, phase) + cfg.noise * gaussian(&mut rng);
            }
        }
    }
    HpcOdaDataset {
        series,
        labels,
        schedule,
        phase_len: cfg.phase_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_labels_align() {
        let cfg = HpcOdaConfig {
            sensors: 16,
            phase_len: 64,
            phases: 8,
            noise: 0.05,
            seed: 1,
        };
        let ds = generate(&cfg);
        assert_eq!(ds.series.dims(), 16);
        assert_eq!(ds.series.len(), 512);
        assert_eq!(ds.labels.len(), 512);
        assert_eq!(ds.schedule.len(), 8);
        // Every 4th phase is idle.
        assert_eq!(ds.schedule[3], AppClass::None);
        assert_eq!(ds.schedule[7], AppClass::None);
    }

    #[test]
    fn signatures_are_class_separable() {
        // Mean sensor level during a class phase must differ across classes
        // by more than the noise, for at least most sensors.
        let a = AppClass::Kripke;
        let b = AppClass::Linpack;
        let mut distinct = 0;
        for sensor in 0..16 {
            let (ba, _, _) = a.signature(sensor);
            let (bb, _, _) = b.signature(sensor);
            if (ba - bb).abs() > 0.1 {
                distinct += 1;
            }
        }
        assert!(
            distinct >= 8,
            "only {distinct}/16 sensors separate the classes"
        );
    }

    #[test]
    fn idle_is_weak_but_structured() {
        for sensor in 0..16 {
            let (base, amp, period) = AppClass::None.signature(sensor);
            assert!(base < 0.1, "idle base level stays low");
            assert!(amp > 0.05 && amp < 0.2, "idle keeps a weak signature");
            assert!(period > 8.0);
        }
        // Idle amplitude is well below every application class.
        for class in &AppClass::ALL[1..] {
            for sensor in 0..16 {
                let (_, amp, _) = class.signature(sensor);
                assert!(amp > 0.25);
            }
        }
    }

    #[test]
    fn split_half_partitions_time() {
        let ds = generate(&HpcOdaConfig::default_case_study());
        let (r, q) = ds.split_half();
        assert_eq!(r.series.len() + q.series.len(), ds.series.len());
        assert_eq!(r.labels.len(), r.series.len());
        assert_eq!(q.labels.len(), q.series.len());
        assert_eq!(r.series.dim(0)[0], ds.series.dim(0)[0]);
        assert_eq!(q.series.dim(3)[0], ds.series.dim(3)[ds.series.len() / 2]);
    }

    #[test]
    fn determinism() {
        let cfg = HpcOdaConfig::default_case_study();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.series, b.series);
        assert_eq!(a.schedule, b.schedule);
    }

    #[test]
    fn class_labels() {
        assert_eq!(AppClass::Lammps.label(), "LAMMPS");
        assert_eq!(AppClass::ALL.len(), 7);
    }
}

//! Deterministic random sampling helpers.
//!
//! All generators in this crate are seeded ([`rand::rngs::StdRng`]) so every
//! experiment is exactly reproducible. Gaussian sampling is implemented via
//! Box–Muller to avoid pulling in a distributions crate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Create the crate's standard seeded RNG.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// One standard-normal sample via the Box–Muller transform.
pub fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so the log is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Fill a buffer with scaled Gaussian noise.
pub fn fill_gaussian<R: Rng>(rng: &mut R, out: &mut [f64], amplitude: f64) {
    for x in out.iter_mut() {
        *x = amplitude * gaussian(rng);
    }
}

/// `count` distinct positions in `[0, max)` that keep at least `min_gap`
/// separation from each other — used to place injected patterns so that
/// embeddings never overlap.
///
/// # Panics
/// Panics if the positions cannot be placed (range too small).
pub fn spaced_positions<R: Rng>(
    rng: &mut R,
    count: usize,
    max: usize,
    min_gap: usize,
) -> Vec<usize> {
    assert!(
        count * min_gap <= max,
        "cannot place {count} positions with gap {min_gap} in [0, {max})"
    );
    let mut chosen: Vec<usize> = Vec::with_capacity(count);
    let mut attempts = 0usize;
    while chosen.len() < count {
        attempts += 1;
        assert!(
            attempts < 100_000,
            "failed to place spaced positions (range too dense)"
        );
        let p = rng.gen_range(0..max);
        if chosen.iter().all(|&q| p.abs_diff(q) >= min_gap) {
            chosen.push(p);
        }
    }
    chosen.sort_unstable();
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let a: Vec<f64> = {
            let mut r = seeded(42);
            (0..10).map(|_| gaussian(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = seeded(42);
            (0..10).map(|_| gaussian(&mut r)).collect()
        };
        assert_eq!(a, b);
        let c: Vec<f64> = {
            let mut r = seeded(43);
            (0..10).map(|_| gaussian(&mut r)).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn gaussian_moments() {
        let mut r = seeded(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
        assert!(samples.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn spaced_positions_respect_gap() {
        let mut r = seeded(3);
        let pos = spaced_positions(&mut r, 10, 10_000, 300);
        assert_eq!(pos.len(), 10);
        for w in pos.windows(2) {
            assert!(w[1] - w[0] >= 300);
        }
        assert!(pos.iter().all(|&p| p < 10_000));
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn spaced_positions_impossible() {
        let mut r = seeded(3);
        let _ = spaced_positions(&mut r, 100, 50, 10);
    }
}

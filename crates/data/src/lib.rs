//! # mdmp-data
//!
//! Input-data substrate for the matrix-profile reproduction: the
//! [`MultiDimSeries`] container (dimension-wise layout, §III-A "Data
//! Layout") and generators for every dataset the paper evaluates on:
//!
//! * [`synthetic`] — the stress-test dataset of §V-A: random noise with
//!   repeating patterns (eight primitive shapes, Fig. 3) injected at known
//!   random locations;
//! * [`hpcoda`] — a synthetic stand-in for the HPC-ODA application-
//!   classification traces of §VI-A (16 sensors, labelled phases);
//! * [`genome`] — synthetic genome sequences encoded A→1, C→2, T→3, G→4 as
//!   in the GIAB case study of §VI-B;
//! * [`turbine`] — gas-turbine startup traces with the two startup shapes of
//!   §VI-C and the pair taxonomy of Table I.
//!
//! Substitutions of real datasets by generators are documented in DESIGN.md.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod genome;
pub mod hpcoda;
pub mod io;
pub mod rng;
pub mod series;
pub mod stats;
pub mod synthetic;
pub mod turbine;

pub use series::MultiDimSeries;
pub use synthetic::{Pattern, SyntheticConfig, SyntheticPair};

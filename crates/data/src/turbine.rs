//! Gas-turbine startup traces for the §VI-C case study.
//!
//! The paper analyses turbine-speed time series from two heavy-duty gas
//! turbines (GT1, GT2) to detect startup events. Two startup shapes exist
//! (Fig. 11): **P1** — a fast S-curve run-up with a small overshoot, and
//! **P2** — a staged run-up with intermediate holds. Series are min-max
//! normalized "to avoid overflow in reduced precision computation".
//!
//! The generator reproduces the taxonomy of Table I: per turbine, 65 series
//! containing P1, 65 containing P2, and 5 containing both, combined into
//! ordered pairs in four categories.

use crate::rng::{fill_gaussian, seeded};
use crate::series::MultiDimSeries;
use rand::rngs::StdRng;
use rand::Rng;

/// The two startup shapes of Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Startup {
    /// Fast S-curve run-up with overshoot (simpler shape).
    P1,
    /// Staged run-up with two intermediate holds (more complex shape).
    P2,
}

impl Startup {
    /// Paper label.
    pub fn label(self) -> &'static str {
        match self {
            Startup::P1 => "P1",
            Startup::P2 => "P2",
        }
    }

    /// Speed profile (0–100 %) at phase `x ∈ [0, 1)` of the startup window.
    pub fn speed(self, x: f64) -> f64 {
        match self {
            Startup::P1 => {
                // Logistic run-up plus a damped overshoot around x = 0.6.
                let ramp = 100.0 / (1.0 + (-14.0 * (x - 0.45)).exp());
                let z = (x - 0.62) / 0.06;
                let overshoot = 6.0 * (-0.5 * z * z).exp();
                (ramp + overshoot).min(106.0)
            }
            Startup::P2 => {
                // Staged: 0 → 30 (hold) → 70 (hold) → 100.
                let stage = |from: f64, to: f64, a: f64, b: f64| {
                    let t = ((x - a) / (b - a)).clamp(0.0, 1.0);
                    from + (to - from) * (3.0 * t * t - 2.0 * t * t * t)
                };
                if x < 0.25 {
                    stage(0.0, 30.0, 0.0, 0.25)
                } else if x < 0.40 {
                    30.0
                } else if x < 0.60 {
                    stage(30.0, 70.0, 0.40, 0.60)
                } else if x < 0.75 {
                    70.0
                } else {
                    stage(70.0, 100.0, 0.75, 1.0)
                }
            }
        }
    }

    /// Render over `m` samples.
    pub fn render(self, m: usize) -> Vec<f64> {
        (0..m).map(|t| self.speed(t as f64 / m as f64)).collect()
    }
}

/// What a generated series contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// One P1 startup.
    OnlyP1,
    /// One P2 startup.
    OnlyP2,
    /// Both startups (the 5 "both" series of Table I).
    Both,
}

/// The four pair categories of Table I / Fig. 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PairClass {
    /// P1-series paired with P1-series.
    P1VsP1,
    /// P2-series paired with P2-series.
    P2VsP2,
    /// Both-series paired with P1-series.
    BothVsP1,
    /// Both-series paired with P2-series.
    BothVsP2,
}

impl PairClass {
    /// All categories in Table I order.
    pub const ALL: [PairClass; 4] = [
        PairClass::P1VsP1,
        PairClass::P2VsP2,
        PairClass::BothVsP1,
        PairClass::BothVsP2,
    ];

    /// Paper label.
    pub fn label(self) -> &'static str {
        match self {
            PairClass::P1VsP1 => "P1-P1",
            PairClass::P2VsP2 => "P2-P2",
            PairClass::BothVsP1 => "both-P1",
            PairClass::BothVsP2 => "both-P2",
        }
    }
}

/// Dataset sizing of §VI-C: per turbine, 65 series with P1, 65 with P2 and
/// 5 with both.
pub const SERIES_PER_KIND: usize = 65;
/// Number of "both" series per turbine.
pub const BOTH_SERIES: usize = 5;

/// Table I: number of ordered input pairs per category.
///
/// * Within one turbine: ordered pairs of distinct same-kind series,
///   `65 × 64 = 4160`; both-vs-kind: `5 × 65 = 325`.
/// * Across the two turbines: all combinations, `65 × 65 = 4225` and
///   `5 × 65 × 2 = 650`.
pub fn table1_counts() -> [(PairClass, usize, usize, usize); 4] {
    let n = SERIES_PER_KIND;
    let b = BOTH_SERIES;
    [
        (PairClass::P1VsP1, n * (n - 1), n * (n - 1), n * n),
        (PairClass::P2VsP2, n * (n - 1), n * (n - 1), n * n),
        (PairClass::BothVsP1, b * n, b * n, b * n * 2),
        (PairClass::BothVsP2, b * n, b * n, b * n * 2),
    ]
}

/// Configuration of the turbine trace generator.
#[derive(Debug, Clone)]
pub struct TurbineConfig {
    /// Number of segments `n` per series (paper: 2¹⁶; scaled here).
    pub n_subsequences: usize,
    /// Segment length `m` (paper: 2¹¹).
    pub m: usize,
    /// Idle-speed measurement noise (% of rated speed).
    pub noise: f64,
    /// Turbine identifier (1 or 2) — shifts the shape slightly so GT1/GT2
    /// patterns differ as real machines do.
    pub turbine: u8,
    /// RNG seed.
    pub seed: u64,
}

impl TurbineConfig {
    /// §VI-C parameters at reproduction scale.
    pub fn default_case_study(n: usize, m: usize, turbine: u8, seed: u64) -> TurbineConfig {
        TurbineConfig {
            n_subsequences: n,
            m,
            noise: 1.0,
            turbine,
            seed,
        }
    }
}

/// One generated turbine series: min-max-normalized speed trace with the
/// startup locations (segment indices).
#[derive(Debug, Clone)]
pub struct TurbineSeries {
    /// The 1-dimensional normalized speed trace.
    pub series: MultiDimSeries,
    /// Startup kind(s) and their segment start locations.
    pub events: Vec<(Startup, usize)>,
    /// Segment length used at generation.
    pub m: usize,
}

/// Generate one series of the requested kind.
pub fn generate_series(kind: SeriesKind, cfg: &TurbineConfig) -> TurbineSeries {
    let mut rng = seeded(cfg.seed);
    let len = cfg.n_subsequences + cfg.m - 1;
    let mut speed = vec![0.0f64; len];
    // Idle rumble around 3% speed.
    fill_gaussian(&mut rng, &mut speed, cfg.noise);
    for s in speed.iter_mut() {
        *s = (*s + 3.0).max(0.0);
    }
    let events = match kind {
        SeriesKind::OnlyP1 => vec![(Startup::P1, place(&mut rng, cfg, &[]))],
        SeriesKind::OnlyP2 => vec![(Startup::P2, place(&mut rng, cfg, &[]))],
        SeriesKind::Both => {
            let a = place(&mut rng, cfg, &[]);
            let b = place(&mut rng, cfg, &[a]);
            vec![(Startup::P1, a), (Startup::P2, b)]
        }
    };
    for &(startup, loc) in &events {
        let shape = startup.render(cfg.m);
        // GT2's machines run up marginally differently.
        let machine_skew = if cfg.turbine == 2 { 0.97 } else { 1.0 };
        for (t, &v) in shape.iter().enumerate() {
            speed[loc + t] = v * machine_skew + cfg.noise * 0.5 * crate::rng::gaussian(&mut rng);
        }
    }
    let mut series = MultiDimSeries::univariate(speed);
    // Min-max normalization (Fig. 11) guards FP16 against overflow.
    series.min_max_normalize();
    TurbineSeries {
        series,
        events,
        m: cfg.m,
    }
}

fn place(rng: &mut StdRng, cfg: &TurbineConfig, avoid: &[usize]) -> usize {
    loop {
        let loc = rng.gen_range(0..cfg.n_subsequences);
        if avoid.iter().all(|&a| loc.abs_diff(a) >= 2 * cfg.m) {
            return loc;
        }
    }
}

/// Build the (query kind, reference kind) for a pair category; the query is
/// the series whose startup we try to locate in the reference.
pub fn pair_kinds(class: PairClass) -> (SeriesKind, SeriesKind) {
    match class {
        PairClass::P1VsP1 => (SeriesKind::OnlyP1, SeriesKind::OnlyP1),
        PairClass::P2VsP2 => (SeriesKind::OnlyP2, SeriesKind::OnlyP2),
        PairClass::BothVsP1 => (SeriesKind::Both, SeriesKind::OnlyP1),
        PairClass::BothVsP2 => (SeriesKind::Both, SeriesKind::OnlyP2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let rows = table1_counts();
        assert_eq!(rows[0], (PairClass::P1VsP1, 4160, 4160, 4225));
        assert_eq!(rows[1], (PairClass::P2VsP2, 4160, 4160, 4225));
        assert_eq!(rows[2], (PairClass::BothVsP1, 325, 325, 650));
        assert_eq!(rows[3], (PairClass::BothVsP2, 325, 325, 650));
    }

    #[test]
    fn startup_shapes_are_monotone_run_ups() {
        for s in [Startup::P1, Startup::P2] {
            let shape = s.render(512);
            assert!(shape[0] < 5.0, "{s:?} starts near idle");
            assert!(shape[511] > 95.0, "{s:?} ends near rated speed");
        }
        // P2 has holds: its derivative is ~zero mid-way.
        let p2 = Startup::P2.render(1000);
        let mid = 320; // inside the 30% hold
        assert!((p2[mid] - p2[mid + 10]).abs() < 0.5);
    }

    #[test]
    fn shapes_differ() {
        let a = Startup::P1.render(256);
        let b = Startup::P2.render(256);
        let diff: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum::<f64>() / 256.0;
        assert!(diff > 5.0, "P1 and P2 should differ substantially: {diff}");
    }

    #[test]
    fn generated_series_is_normalized_with_events() {
        let cfg = TurbineConfig::default_case_study(4096, 256, 1, 7);
        let ts = generate_series(SeriesKind::Both, &cfg);
        assert_eq!(ts.series.dims(), 1);
        assert_eq!(ts.events.len(), 2);
        let d = ts.series.dim(0);
        let lo = d.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = d.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(lo, 0.0);
        assert_eq!(hi, 1.0);
        // Startup regions reach high normalized speed.
        for &(_, loc) in &ts.events {
            let peak = d[loc..loc + cfg.m].iter().copied().fold(0.0, f64::max);
            assert!(peak > 0.8, "startup at {loc} not visible, peak {peak}");
        }
    }

    #[test]
    fn only_series_have_one_event_of_right_kind() {
        let cfg = TurbineConfig::default_case_study(2048, 128, 2, 9);
        let p1 = generate_series(SeriesKind::OnlyP1, &cfg);
        assert_eq!(p1.events.len(), 1);
        assert_eq!(p1.events[0].0, Startup::P1);
        let p2 = generate_series(SeriesKind::OnlyP2, &cfg);
        assert_eq!(p2.events[0].0, Startup::P2);
    }

    #[test]
    fn pair_kind_mapping() {
        assert_eq!(
            pair_kinds(PairClass::BothVsP2),
            (SeriesKind::Both, SeriesKind::OnlyP2)
        );
        assert_eq!(PairClass::BothVsP1.label(), "both-P1");
    }
}

//! Plain-text persistence for series and experiment outputs.
//!
//! CSV keeps the repository free of binary blobs and lets every generated
//! dataset and result table be inspected with standard tooling. One column
//! per dimension, one row per time step, `#`-prefixed header comments.

use crate::series::MultiDimSeries;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Write a series as CSV (one column per dimension).
pub fn write_csv(path: &Path, series: &MultiDimSeries) -> io::Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(
        w,
        "# mdmp series: dims={} len={}",
        series.dims(),
        series.len()
    )?;
    for t in 0..series.len() {
        for k in 0..series.dims() {
            if k > 0 {
                write!(w, ",")?;
            }
            write!(w, "{}", series.value(k, t))?;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Read a series written by [`write_csv`] (or any headerless numeric CSV
/// with consistent column counts).
pub fn read_csv(path: &Path) -> io::Result<MultiDimSeries> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut columns: Vec<Vec<f64>> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let values: Result<Vec<f64>, _> = trimmed.split(',').map(|v| v.trim().parse()).collect();
        let values = values.map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {e}", lineno + 1),
            )
        })?;
        if columns.is_empty() {
            columns = vec![Vec::new(); values.len()];
        } else if values.len() != columns.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "line {}: expected {} columns, found {}",
                    lineno + 1,
                    columns.len(),
                    values.len()
                ),
            ));
        }
        for (c, v) in columns.iter_mut().zip(values) {
            c.push(v);
        }
    }
    if columns.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "no data rows in CSV",
        ));
    }
    Ok(MultiDimSeries::from_dims(columns))
}

/// Write a generic result table: a header row and `f64` data rows, with a
/// comment describing the experiment — the format the `repro` binary uses
/// for every figure's data.
pub fn write_table(
    path: &Path,
    comment: &str,
    header: &[&str],
    rows: &[Vec<f64>],
) -> io::Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "# {comment}")?;
    writeln!(w, "{}", header.join(","))?;
    for row in rows {
        let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        writeln!(w, "{}", cells.join(","))?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mdmp_io_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn csv_round_trip() {
        let s = MultiDimSeries::from_dims(vec![vec![1.0, 2.5, -3.0], vec![0.125, 1e-9, 4.0]]);
        let p = tmp("round_trip.csv");
        write_csv(&p, &s).unwrap();
        let back = read_csv(&p).unwrap();
        assert_eq!(back, s);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn read_rejects_ragged_rows() {
        let p = tmp("ragged.csv");
        std::fs::write(&p, "1,2\n3\n").unwrap();
        let err = read_csv(&p).unwrap_err();
        assert!(err.to_string().contains("expected 2 columns"));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn read_rejects_garbage() {
        let p = tmp("garbage.csv");
        std::fs::write(&p, "1,abc\n").unwrap();
        assert!(read_csv(&p).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn read_rejects_empty() {
        let p = tmp("empty.csv");
        std::fs::write(&p, "# only a comment\n").unwrap();
        assert!(read_csv(&p).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn table_writer_format() {
        let p = tmp("table.csv");
        write_table(
            &p,
            "fig-x test",
            &["n", "accuracy"],
            &[vec![1024.0, 0.99], vec![2048.0, 0.97]],
        )
        .unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        assert!(text.starts_with("# fig-x test\nn,accuracy\n1024,0.99\n"));
        std::fs::remove_file(&p).ok();
    }
}

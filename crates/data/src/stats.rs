//! Reference (f64) rolling statistics and normalization helpers.
//!
//! These are *host-side* utilities for generators, metrics and tests. The
//! reduced-precision rolling statistics of the matrix-profile pipeline live
//! in `mdmp-core::precalc`, where their rounding behaviour is part of the
//! experiment.

/// Rolling mean of every length-`m` window: output length `len − m + 1`.
///
/// # Panics
/// Panics if `m == 0` or `m > x.len()`.
pub fn rolling_mean(x: &[f64], m: usize) -> Vec<f64> {
    assert!(m > 0 && m <= x.len(), "invalid window length");
    let n = x.len() - m + 1;
    let inv = 1.0 / m as f64;
    let mut out = Vec::with_capacity(n);
    let mut sum: f64 = x[..m].iter().sum();
    out.push(sum * inv);
    for i in 1..n {
        sum += x[i + m - 1] - x[i - 1];
        out.push(sum * inv);
    }
    out
}

/// Rolling population standard deviation of every length-`m` window,
/// computed stably via the two-pass formula per window.
pub fn rolling_std(x: &[f64], m: usize) -> Vec<f64> {
    let means = rolling_mean(x, m);
    means
        .iter()
        .enumerate()
        .map(|(i, &mu)| {
            let ss: f64 = x[i..i + m].iter().map(|&v| (v - mu) * (v - mu)).sum();
            (ss / m as f64).sqrt()
        })
        .collect()
}

/// Z-normalize a segment: zero mean, unit standard deviation. A flat segment
/// (σ = 0) returns all zeros.
pub fn znormalize(seg: &[f64]) -> Vec<f64> {
    let m = seg.len() as f64;
    let mu = seg.iter().sum::<f64>() / m;
    let var = seg.iter().map(|&v| (v - mu) * (v - mu)).sum::<f64>() / m;
    let sd = var.sqrt();
    // float-eq-ok: exact-zero guard against dividing by a true zero
    // deviation (constant segment); near-zero must NOT be caught, it
    // still normalizes deterministically.
    if sd == 0.0 {
        return vec![0.0; seg.len()];
    }
    seg.iter().map(|&v| (v - mu) / sd).collect()
}

/// Z-normalized Euclidean distance between two equal-length segments — the
/// brute-force ground truth the streaming kernels are verified against.
///
/// # Panics
/// Panics on length mismatch.
pub fn znorm_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "segment length mismatch");
    let za = znormalize(a);
    let zb = znormalize(b);
    za.iter()
        .zip(&zb)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Pearson correlation between two equal-length segments.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "segment length mismatch");
    let za = znormalize(a);
    let zb = znormalize(b);
    za.iter().zip(&zb).map(|(x, y)| x * y).sum::<f64>() / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_mean_matches_direct() {
        let x: Vec<f64> = (0..20).map(|i| (i as f64).sin() * 3.0 + i as f64).collect();
        let m = 5;
        let rm = rolling_mean(&x, m);
        assert_eq!(rm.len(), 16);
        for (i, &mu) in rm.iter().enumerate() {
            let direct: f64 = x[i..i + m].iter().sum::<f64>() / m as f64;
            assert!((mu - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn rolling_std_matches_direct() {
        let x: Vec<f64> = (0..50).map(|i| ((i * 7 % 13) as f64) * 0.3).collect();
        let m = 8;
        let rs = rolling_std(&x, m);
        for (i, &sd) in rs.iter().enumerate() {
            let mu: f64 = x[i..i + m].iter().sum::<f64>() / m as f64;
            let var: f64 = x[i..i + m]
                .iter()
                .map(|&v| (v - mu) * (v - mu))
                .sum::<f64>()
                / m as f64;
            assert!((sd - var.sqrt()).abs() < 1e-12);
        }
    }

    #[test]
    fn znormalize_properties() {
        let seg = vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let z = znormalize(&seg);
        let mean: f64 = z.iter().sum::<f64>() / z.len() as f64;
        let var: f64 = z.iter().map(|v| v * v).sum::<f64>() / z.len() as f64;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
        assert_eq!(znormalize(&[3.0; 10]), vec![0.0; 10]);
    }

    #[test]
    fn znorm_distance_and_pearson_identity() {
        // dist² = 2m(1 − ρ), the identity Eq. 1 exploits.
        let a: Vec<f64> = (0..32).map(|i| (i as f64 * 0.2).sin()).collect();
        let b: Vec<f64> = (0..32)
            .map(|i| (i as f64 * 0.2 + 0.7).cos() + 0.1 * i as f64)
            .collect();
        let d = znorm_distance(&a, &b);
        let rho = pearson(&a, &b);
        let m = a.len() as f64;
        assert!((d * d - 2.0 * m * (1.0 - rho)).abs() < 1e-9);
    }

    #[test]
    fn identical_segments_have_zero_distance_and_unit_correlation() {
        let a: Vec<f64> = (0..16).map(|i| (i as f64).cos()).collect();
        // Affine copies are identical after z-normalization.
        let b: Vec<f64> = a.iter().map(|&v| 3.0 * v + 10.0).collect();
        assert!(znorm_distance(&a, &b) < 1e-9);
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
    }
}

//! The synthetic stress-test dataset of §V-A: "random noise combined with
//! randomly-located injected repeating patterns", with eight primitive
//! pattern shapes of different complexity (P0–P7, Fig. 3).
//!
//! A [`SyntheticPair`] is a (reference, query) pair of multi-dimensional
//! series that both contain instances of the same pattern at known
//! locations; the embedded-motif recall metrics check whether the computed
//! matrix-profile index links the query instance back to a reference
//! instance.

use crate::rng::{fill_gaussian, gaussian, seeded, spaced_positions};
use crate::series::MultiDimSeries;
use rand::rngs::StdRng;
use rand::Rng;
use std::f64::consts::TAU;

/// The eight primitive pattern shapes of Fig. 3, ordered by rough
/// complexity. Each is defined on phase `x ∈ [0, 1)` with values in
/// `[−1, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// P0 — one period of a sine wave.
    Sine,
    /// P1 — a square wave.
    Square,
    /// P2 — a symmetric triangle.
    Triangle,
    /// P3 — a rising sawtooth.
    Sawtooth,
    /// P4 — a Gaussian bump.
    GaussBump,
    /// P5 — a linear chirp (frequency rises 1→3 periods).
    Chirp,
    /// P6 — an exponentially damped oscillation.
    DampedOsc,
    /// P7 — a double bump ("M" shape).
    DoubleBump,
}

impl Pattern {
    /// All patterns in paper order P0..P7.
    pub const ALL: [Pattern; 8] = [
        Pattern::Sine,
        Pattern::Square,
        Pattern::Triangle,
        Pattern::Sawtooth,
        Pattern::GaussBump,
        Pattern::Chirp,
        Pattern::DampedOsc,
        Pattern::DoubleBump,
    ];

    /// Paper label ("P0" … "P7").
    pub fn label(self) -> &'static str {
        match self {
            Pattern::Sine => "P0",
            Pattern::Square => "P1",
            Pattern::Triangle => "P2",
            Pattern::Sawtooth => "P3",
            Pattern::GaussBump => "P4",
            Pattern::Chirp => "P5",
            Pattern::DampedOsc => "P6",
            Pattern::DoubleBump => "P7",
        }
    }

    /// Evaluate the shape at phase `x ∈ [0, 1)`.
    pub fn sample(self, x: f64) -> f64 {
        match self {
            Pattern::Sine => (TAU * x).sin(),
            Pattern::Square => {
                if x < 0.5 {
                    1.0
                } else {
                    -1.0
                }
            }
            Pattern::Triangle => {
                if x < 0.25 {
                    4.0 * x
                } else if x < 0.75 {
                    2.0 - 4.0 * x
                } else {
                    4.0 * x - 4.0
                }
            }
            Pattern::Sawtooth => 2.0 * x - 1.0,
            Pattern::GaussBump => {
                let z = (x - 0.5) / 0.15;
                2.0 * (-0.5 * z * z).exp() - 1.0
            }
            Pattern::Chirp => (TAU * (x + x * x)).sin(),
            Pattern::DampedOsc => (-3.0 * x).exp() * (3.0 * TAU * x).sin(),
            Pattern::DoubleBump => {
                let b = |c: f64| {
                    let z = (x - c) / 0.1;
                    (-0.5 * z * z).exp()
                };
                2.0 * (b(0.3) + b(0.7)).min(1.0) - 1.0
            }
        }
    }

    /// Render the pattern over `m` samples.
    pub fn render(self, m: usize) -> Vec<f64> {
        (0..m).map(|t| self.sample(t as f64 / m as f64)).collect()
    }
}

/// Configuration of a synthetic stress-test dataset.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Number of segments `n` (the series length is `n + m − 1`).
    pub n_subsequences: usize,
    /// Dimensionality `d`.
    pub dims: usize,
    /// Segment length `m` (also the injected pattern length).
    pub m: usize,
    /// The injected pattern shape.
    pub pattern: Pattern,
    /// Number of pattern instances embedded per series.
    pub embeddings: usize,
    /// Gaussian noise amplitude (σ) of the background.
    pub noise: f64,
    /// Pattern amplitude relative to the noise.
    pub pattern_amplitude: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticConfig {
    /// The paper's default stress-test setting: n = 2¹⁶, d = 2⁶, m = 2⁶
    /// (scaled down in the reproduction; see EXPERIMENTS.md).
    pub fn paper_default() -> SyntheticConfig {
        SyntheticConfig {
            n_subsequences: 1 << 16,
            dims: 1 << 6,
            m: 1 << 6,
            pattern: Pattern::Sine,
            embeddings: 4,
            noise: 0.3,
            pattern_amplitude: 1.0,
            seed: 0xC0FFEE,
        }
    }

    /// Series length `n + m − 1`.
    pub fn series_len(&self) -> usize {
        self.n_subsequences + self.m - 1
    }
}

/// A generated (reference, query) pair with known embedding locations.
#[derive(Debug, Clone)]
pub struct SyntheticPair {
    /// The reference series `T_r`.
    pub reference: MultiDimSeries,
    /// The query series `T_q`.
    pub query: MultiDimSeries,
    /// Segment indices in the reference where the pattern starts.
    pub reference_locs: Vec<usize>,
    /// Segment indices in the query where the pattern starts.
    pub query_locs: Vec<usize>,
    /// The embedded pattern.
    pub pattern: Pattern,
    /// Segment length.
    pub m: usize,
}

/// Generate a reference/query pair per the configuration.
///
/// The same pattern instance (scaled per dimension) is written into every
/// dimension at each embedding location, making the embedding a genuine
/// *multi-dimensional* motif as required by the mSTAMP semantics.
pub fn generate_pair(cfg: &SyntheticConfig) -> SyntheticPair {
    assert!(cfg.n_subsequences > 0 && cfg.dims > 0 && cfg.m > 1);
    let mut rng = seeded(cfg.seed);
    let len = cfg.series_len();
    let min_gap = 2 * cfg.m;
    let max_start = cfg.n_subsequences;

    let reference_locs = spaced_positions(&mut rng, cfg.embeddings, max_start, min_gap);
    let query_locs = spaced_positions(&mut rng, cfg.embeddings, max_start, min_gap);

    let reference = build_series(cfg, &mut rng, len, &reference_locs);
    let query = build_series(cfg, &mut rng, len, &query_locs);

    SyntheticPair {
        reference,
        query,
        reference_locs,
        query_locs,
        pattern: cfg.pattern,
        m: cfg.m,
    }
}

fn build_series(
    cfg: &SyntheticConfig,
    rng: &mut StdRng,
    len: usize,
    locs: &[usize],
) -> MultiDimSeries {
    let mut series = MultiDimSeries::zeros(cfg.dims, len);
    let shape = cfg.pattern.render(cfg.m);
    // Per-dimension amplitude jitter so dimensions are correlated but not
    // identical (the embedding is still synchronous across dimensions).
    for k in 0..cfg.dims {
        let dim = series.dim_mut(k);
        fill_gaussian(rng, dim, cfg.noise);
        let scale = cfg.pattern_amplitude * (1.0 + 0.1 * gaussian(rng));
        for &loc in locs {
            for (t, &v) in shape.iter().enumerate() {
                dim[loc + t] += scale * v;
            }
        }
    }
    series
}

/// The 80-group parameter sweep of the paper's stress tests (§V-A): every
/// combination of `n ∈ {2¹²..2¹⁶}`, `d ∈ {2³..2⁶}`, `m ∈ {2³..2⁶}`
/// (5 × 4 × 4 = 80 groups). `scale_shift` right-shifts every `n` to make
/// the sweep tractable for functional (software-precision) runs.
pub fn stress_sweep(scale_shift: u32) -> Vec<SyntheticConfig> {
    let mut out = Vec::new();
    for n_pow in 12..=16u32 {
        for d_pow in 3..=6u32 {
            for m_pow in 3..=6u32 {
                if out.len() == 80 {
                    return out;
                }
                out.push(SyntheticConfig {
                    n_subsequences: 1usize << n_pow.saturating_sub(scale_shift).max(7),
                    dims: 1 << d_pow,
                    m: 1 << m_pow,
                    pattern: Pattern::ALL[out.len() % 8],
                    embeddings: 4,
                    noise: 0.3,
                    pattern_amplitude: 1.0,
                    seed: 1000 + out.len() as u64,
                });
            }
        }
    }
    out
}

/// Sample a random segment index avoiding the embedded locations — used by
/// tests that need "plain noise" queries.
pub fn random_noise_segment<R: Rng>(rng: &mut R, n: usize, m: usize, locs: &[usize]) -> usize {
    loop {
        let i = rng.gen_range(0..n);
        if locs.iter().all(|&l| i.abs_diff(l) >= 2 * m) {
            return i;
        }
    }
}

/// Convenience: a phase-aligned copy check value (mean absolute difference
/// between two renderings of a pattern) — zero for identical shapes.
pub fn shape_distance(a: Pattern, b: Pattern, m: usize) -> f64 {
    let ra = a.render(m);
    let rb = b.render(m);
    ra.iter().zip(&rb).map(|(x, y)| (x - y).abs()).sum::<f64>() / m as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::znorm_distance;

    fn small_cfg() -> SyntheticConfig {
        SyntheticConfig {
            n_subsequences: 2048,
            dims: 4,
            m: 32,
            pattern: Pattern::Sine,
            embeddings: 3,
            noise: 0.3,
            pattern_amplitude: 1.0,
            seed: 99,
        }
    }

    #[test]
    fn patterns_are_bounded_and_distinct() {
        for p in Pattern::ALL {
            for t in 0..256 {
                let v = p.sample(t as f64 / 256.0);
                assert!((-1.0001..=1.0001).contains(&v), "{p:?} out of range: {v}");
            }
        }
        // All 8 shapes pairwise distinct.
        for (i, &a) in Pattern::ALL.iter().enumerate() {
            for &b in &Pattern::ALL[i + 1..] {
                assert!(
                    shape_distance(a, b, 128) > 0.05,
                    "{a:?} vs {b:?} too similar"
                );
            }
        }
    }

    #[test]
    fn labels_are_p0_to_p7() {
        let labels: Vec<&str> = Pattern::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels, ["P0", "P1", "P2", "P3", "P4", "P5", "P6", "P7"]);
    }

    #[test]
    fn generated_pair_has_expected_shape() {
        let cfg = small_cfg();
        let pair = generate_pair(&cfg);
        assert_eq!(pair.reference.dims(), 4);
        assert_eq!(pair.reference.len(), cfg.series_len());
        assert_eq!(pair.reference.n_segments(cfg.m), cfg.n_subsequences);
        assert_eq!(pair.reference_locs.len(), 3);
        assert_eq!(pair.query_locs.len(), 3);
        assert!(pair.reference_locs.iter().all(|&l| l < cfg.n_subsequences));
    }

    #[test]
    fn embedded_locations_are_mutual_nearest_neighbors() {
        let cfg = small_cfg();
        let pair = generate_pair(&cfg);
        let q_loc = pair.query_locs[0];
        let q_seg = &pair.query.dim(0)[q_loc..q_loc + cfg.m];
        // The reference embedding should be far closer than random locations.
        let best_ref = pair
            .reference_locs
            .iter()
            .map(|&r| znorm_distance(q_seg, &pair.reference.dim(0)[r..r + cfg.m]))
            .fold(f64::INFINITY, f64::min);
        let mut rng = seeded(5);
        let mut random_best = f64::INFINITY;
        for _ in 0..50 {
            let i = random_noise_segment(&mut rng, cfg.n_subsequences, cfg.m, &pair.reference_locs);
            let d = znorm_distance(q_seg, &pair.reference.dim(0)[i..i + cfg.m]);
            random_best = random_best.min(d);
        }
        assert!(
            best_ref < 0.7 * random_best,
            "embedding not recoverable: {best_ref} vs noise {random_best}"
        );
    }

    #[test]
    fn determinism_per_seed() {
        let cfg = small_cfg();
        let a = generate_pair(&cfg);
        let b = generate_pair(&cfg);
        assert_eq!(a.reference, b.reference);
        assert_eq!(a.query_locs, b.query_locs);
        let mut cfg2 = small_cfg();
        cfg2.seed = 100;
        let c = generate_pair(&cfg2);
        assert_ne!(a.reference, c.reference);
    }

    #[test]
    fn stress_sweep_has_80_groups() {
        let sweep = stress_sweep(4);
        assert_eq!(sweep.len(), 80);
        assert!(sweep.iter().all(|c| c.n_subsequences >= 128));
        // Unscaled sweep reaches the paper sizes.
        let full = stress_sweep(0);
        assert!(full.iter().any(|c| c.n_subsequences == 1 << 16));
        assert!(full.iter().any(|c| c.dims == 64 && c.m == 64));
    }

    #[test]
    fn pattern_render_length() {
        for p in Pattern::ALL {
            assert_eq!(p.render(77).len(), 77);
        }
    }
}

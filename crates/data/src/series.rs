//! The multi-dimensional time series container.
//!
//! Storage uses the paper's **dimension-wise layout** (§III-A): consecutive
//! samples of one dimension are contiguous, i.e. `data[k * len + t]` for
//! dimension `k` and time `t`. This is the layout the simulated kernels
//! consume directly, so slicing a dimension is free.

use std::fmt;

/// A synchronously sampled `d`-dimensional real-valued time series.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiDimSeries {
    data: Vec<f64>,
    len: usize,
    dims: usize,
}

impl MultiDimSeries {
    /// A zero-filled series with `dims` dimensions of `len` samples.
    pub fn zeros(dims: usize, len: usize) -> MultiDimSeries {
        assert!(dims > 0, "need at least one dimension");
        MultiDimSeries {
            data: vec![0.0; dims * len],
            len,
            dims,
        }
    }

    /// Build from per-dimension sample vectors (all must share a length).
    ///
    /// # Panics
    /// Panics if `dims` is empty or lengths differ.
    pub fn from_dims(dims: Vec<Vec<f64>>) -> MultiDimSeries {
        assert!(!dims.is_empty(), "need at least one dimension");
        let len = dims[0].len();
        assert!(
            dims.iter().all(|d| d.len() == len),
            "all dimensions must have the same length"
        );
        let d = dims.len();
        let mut data = Vec::with_capacity(d * len);
        for dim in &dims {
            data.extend_from_slice(dim);
        }
        MultiDimSeries { data, len, dims: d }
    }

    /// Build a 1-dimensional series (the turbine case study has d = 1).
    pub fn univariate(samples: Vec<f64>) -> MultiDimSeries {
        let len = samples.len();
        MultiDimSeries {
            data: samples,
            len,
            dims: 1,
        }
    }

    /// Samples per dimension.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of dimensions `d`.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of segments of length `m`: `n = len − m + 1`.
    ///
    /// # Panics
    /// Panics if `m` is zero or longer than the series.
    pub fn n_segments(&self, m: usize) -> usize {
        assert!(m > 0, "segment length must be positive");
        assert!(
            m <= self.len,
            "segment length {m} exceeds series length {}",
            self.len
        );
        self.len - m + 1
    }

    /// The samples of dimension `k`.
    pub fn dim(&self, k: usize) -> &[f64] {
        assert!(k < self.dims, "dimension {k} out of range");
        &self.data[k * self.len..(k + 1) * self.len]
    }

    /// Mutable samples of dimension `k`.
    pub fn dim_mut(&mut self, k: usize) -> &mut [f64] {
        assert!(k < self.dims, "dimension {k} out of range");
        &mut self.data[k * self.len..(k + 1) * self.len]
    }

    /// One sample.
    pub fn value(&self, k: usize, t: usize) -> f64 {
        self.dim(k)[t]
    }

    /// The raw dimension-major buffer.
    pub fn raw(&self) -> &[f64] {
        &self.data
    }

    /// The time range `[start, start+len)` of every dimension as a new
    /// series — how tile input slices are cut (Pseudocode 2).
    pub fn window(&self, start: usize, len: usize) -> MultiDimSeries {
        assert!(
            start + len <= self.len,
            "window [{start}, {}) exceeds series length {}",
            start + len,
            self.len
        );
        let mut out = MultiDimSeries::zeros(self.dims, len);
        for k in 0..self.dims {
            out.dim_mut(k)
                .copy_from_slice(&self.dim(k)[start..start + len]);
        }
        out
    }

    /// The leading `count` dimensions as a new series (dimensionality
    /// sweeps of Fig. 2 / Fig. 4 reuse one generated dataset).
    pub fn take_dims(&self, count: usize) -> MultiDimSeries {
        assert!(count >= 1 && count <= self.dims, "invalid dimension count");
        let mut out = MultiDimSeries::zeros(count, self.len);
        for k in 0..count {
            out.dim_mut(k).copy_from_slice(self.dim(k));
        }
        out
    }

    /// Min-max normalize each dimension to `[0, 1]` in place — applied to the
    /// turbine data "to avoid overflow in reduced precision computation"
    /// (Fig. 11 caption). Constant dimensions map to all-zeros.
    pub fn min_max_normalize(&mut self) {
        for k in 0..self.dims {
            let dim = self.dim_mut(k);
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &x in dim.iter() {
                lo = lo.min(x);
                hi = hi.max(x);
            }
            let range = hi - lo;
            if range > 0.0 {
                for x in dim.iter_mut() {
                    *x = (*x - lo) / range;
                }
            } else {
                for x in dim.iter_mut() {
                    *x = 0.0;
                }
            }
        }
    }

    /// Memory footprint of this series when stored with `bytes_per_elem`
    /// bytes per value (device-copy sizing).
    pub fn storage_bytes(&self, bytes_per_elem: usize) -> u64 {
        (self.data.len() * bytes_per_elem) as u64
    }

    /// Number of non-finite samples (NaN/±∞) across all dimensions —
    /// sensor dropouts in monitoring data.
    pub fn non_finite_count(&self) -> usize {
        self.data.iter().filter(|v| !v.is_finite()).count()
    }

    /// Repair sensor dropouts in place: every non-finite run is replaced by
    /// linear interpolation between its finite neighbours (constant
    /// extrapolation at the edges). A dimension with no finite sample at
    /// all becomes zeros. Returns the number of repaired samples.
    ///
    /// Matrix-profile statistics are poisoned by a single NaN in a window
    /// (the whole window's distance becomes NaN and can never match), so
    /// monitoring pipelines should repair dropouts before mining.
    pub fn interpolate_non_finite(&mut self) -> usize {
        let mut repaired = 0;
        for k in 0..self.dims {
            let dim = self.dim_mut(k);
            let n = dim.len();
            let mut t = 0;
            while t < n {
                if dim[t].is_finite() {
                    t += 1;
                    continue;
                }
                // Find the extent of the non-finite run [t, end).
                let mut end = t;
                while end < n && !dim[end].is_finite() {
                    end += 1;
                }
                let left = if t > 0 { Some(dim[t - 1]) } else { None };
                let right = if end < n { Some(dim[end]) } else { None };
                match (left, right) {
                    (Some(l), Some(r)) => {
                        let run = (end - t + 1) as f64;
                        for (step, v) in dim[t..end].iter_mut().enumerate() {
                            let w = (step + 1) as f64 / run;
                            *v = l + (r - l) * w;
                        }
                    }
                    (Some(l), None) => dim[t..end].fill(l),
                    (None, Some(r)) => dim[t..end].fill(r),
                    (None, None) => dim[t..end].fill(0.0),
                }
                repaired += end - t;
                t = end;
            }
        }
        repaired
    }
}

impl fmt::Display for MultiDimSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MultiDimSeries(d={}, len={})", self.dims, self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_layout() {
        let s = MultiDimSeries::from_dims(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(s.dims(), 2);
        assert_eq!(s.len(), 3);
        assert_eq!(s.dim(0), &[1.0, 2.0, 3.0]);
        assert_eq!(s.dim(1), &[4.0, 5.0, 6.0]);
        assert_eq!(s.value(1, 2), 6.0);
        // Dimension-wise layout: dim 0 contiguous, then dim 1.
        assert_eq!(s.raw(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn segment_count() {
        let s = MultiDimSeries::zeros(1, 100);
        assert_eq!(s.n_segments(10), 91);
        assert_eq!(s.n_segments(100), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds series length")]
    fn segment_count_rejects_long_m() {
        let s = MultiDimSeries::zeros(1, 10);
        let _ = s.n_segments(11);
    }

    #[test]
    fn window_slices_every_dimension() {
        let s = MultiDimSeries::from_dims(vec![
            (0..10).map(|x| x as f64).collect(),
            (0..10).map(|x| (x * 10) as f64).collect(),
        ]);
        let w = s.window(3, 4);
        assert_eq!(w.len(), 4);
        assert_eq!(w.dim(0), &[3.0, 4.0, 5.0, 6.0]);
        assert_eq!(w.dim(1), &[30.0, 40.0, 50.0, 60.0]);
    }

    #[test]
    fn take_dims_prefix() {
        let s = MultiDimSeries::from_dims(vec![vec![1.0; 5], vec![2.0; 5], vec![3.0; 5]]);
        let t = s.take_dims(2);
        assert_eq!(t.dims(), 2);
        assert_eq!(t.dim(1), &[2.0; 5]);
    }

    #[test]
    fn min_max_normalization() {
        let mut s = MultiDimSeries::from_dims(vec![vec![0.0, 50.0, 100.0], vec![7.0, 7.0, 7.0]]);
        s.min_max_normalize();
        assert_eq!(s.dim(0), &[0.0, 0.5, 1.0]);
        assert_eq!(s.dim(1), &[0.0, 0.0, 0.0], "constant dim maps to zeros");
    }

    #[test]
    fn mutation_through_dim_mut() {
        let mut s = MultiDimSeries::zeros(2, 3);
        s.dim_mut(1)[2] = 9.0;
        assert_eq!(s.value(1, 2), 9.0);
        assert_eq!(s.value(0, 2), 0.0);
    }

    #[test]
    fn interpolation_repairs_interior_runs() {
        let mut s = MultiDimSeries::from_dims(vec![vec![
            1.0,
            f64::NAN,
            f64::NAN,
            4.0,
            5.0,
            f64::INFINITY,
            7.0,
        ]]);
        assert_eq!(s.non_finite_count(), 3);
        let repaired = s.interpolate_non_finite();
        assert_eq!(repaired, 3);
        assert_eq!(s.dim(0), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(s.non_finite_count(), 0);
    }

    #[test]
    fn interpolation_extrapolates_edges() {
        let mut s = MultiDimSeries::from_dims(vec![vec![f64::NAN, f64::NAN, 3.0, f64::NAN]]);
        s.interpolate_non_finite();
        assert_eq!(s.dim(0), &[3.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn interpolation_zeroes_fully_dead_dimension() {
        let mut s = MultiDimSeries::from_dims(vec![vec![f64::NAN; 4], vec![1.0; 4]]);
        let repaired = s.interpolate_non_finite();
        assert_eq!(repaired, 4);
        assert_eq!(s.dim(0), &[0.0; 4]);
        assert_eq!(s.dim(1), &[1.0; 4], "healthy dimension untouched");
    }

    #[test]
    fn interpolation_noop_on_clean_data() {
        let mut s = MultiDimSeries::from_dims(vec![vec![1.0, 2.0, 3.0]]);
        assert_eq!(s.interpolate_non_finite(), 0);
        assert_eq!(s.dim(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn storage_sizing() {
        let s = MultiDimSeries::zeros(4, 1000);
        assert_eq!(s.storage_bytes(8), 32_000);
        assert_eq!(s.storage_bytes(2), 8_000);
    }
}

//! Property tests of the workload generators.

use mdmp_data::genome::{self, GenomeConfig};
use mdmp_data::rng::{gaussian, seeded, spaced_positions};
use mdmp_data::stats::{rolling_mean, rolling_std, znorm_distance};
use mdmp_data::synthetic::{generate_pair, Pattern, SyntheticConfig};
use mdmp_data::turbine::{self, SeriesKind, TurbineConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn spaced_positions_always_respect_gap(
        seed in 0u64..1000,
        count in 1usize..8,
        gap_factor in 1usize..6,
    ) {
        let max = 4096;
        let gap = gap_factor * 50;
        prop_assume!(count * gap <= max);
        let mut rng = seeded(seed);
        let pos = spaced_positions(&mut rng, count, max, gap);
        prop_assert_eq!(pos.len(), count);
        for w in pos.windows(2) {
            prop_assert!(w[1] - w[0] >= gap);
        }
        prop_assert!(pos.iter().all(|&p| p < max));
    }

    #[test]
    fn synthetic_pair_embeddings_are_recoverable(
        seed in 0u64..200,
        pattern_idx in 0usize..8,
    ) {
        let cfg = SyntheticConfig {
            n_subsequences: 512,
            dims: 2,
            m: 32,
            pattern: Pattern::ALL[pattern_idx],
            embeddings: 2,
            noise: 0.25,
            pattern_amplitude: 1.3,
            seed,
        };
        let pair = generate_pair(&cfg);
        // Every query embedding is much closer to some reference embedding
        // than the typical noise distance sqrt(2m) ≈ 8.
        for &q in &pair.query_locs {
            let best = pair.reference_locs.iter().map(|&r| {
                (0..2).map(|k| znorm_distance(
                    &pair.query.dim(k)[q..q + 32],
                    &pair.reference.dim(k)[r..r + 32],
                )).sum::<f64>() / 2.0
            }).fold(f64::INFINITY, f64::min);
            prop_assert!(best < 6.0, "embedding unrecoverable: {}", best);
        }
    }

    #[test]
    fn rolling_stats_agree_with_direct_computation(
        seed in 0u64..500,
        m in 2usize..20,
    ) {
        let mut rng = seeded(seed);
        let x: Vec<f64> = (0..100).map(|_| gaussian(&mut rng) * 3.0 + 1.0).collect();
        let means = rolling_mean(&x, m);
        let stds = rolling_std(&x, m);
        prop_assert_eq!(means.len(), 100 - m + 1);
        for i in 0..means.len() {
            let mu: f64 = x[i..i + m].iter().sum::<f64>() / m as f64;
            prop_assert!((means[i] - mu).abs() < 1e-10);
            let var: f64 = x[i..i + m].iter().map(|v| (v - mu) * (v - mu)).sum::<f64>() / m as f64;
            prop_assert!((stds[i] - var.sqrt()).abs() < 1e-10);
        }
    }

    #[test]
    fn turbine_series_always_normalized_with_visible_startup(
        seed in 0u64..100,
        kind_idx in 0usize..3,
    ) {
        let kind = [SeriesKind::OnlyP1, SeriesKind::OnlyP2, SeriesKind::Both][kind_idx];
        let cfg = TurbineConfig::default_case_study(1024, 128, 1 + (seed % 2) as u8, seed);
        let ts = turbine::generate_series(kind, &cfg);
        let d0 = ts.series.dim(0);
        let lo = d0.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = d0.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(lo, 0.0);
        prop_assert_eq!(hi, 1.0);
        let expected_events = if kind == SeriesKind::Both { 2 } else { 1 };
        prop_assert_eq!(ts.events.len(), expected_events);
        for &(_, loc) in &ts.events {
            let peak = d0[loc..loc + 128].iter().copied().fold(0.0, f64::max);
            prop_assert!(peak > 0.7, "startup at {} invisible (peak {})", loc, peak);
        }
    }

    #[test]
    fn genome_values_always_encode_bases(seed in 0u64..100) {
        let cfg = GenomeConfig {
            len: 1500,
            channels: 3,
            gene_len: 64,
            genes: 2,
            mutation_rate: 0.05,
            seed,
        };
        let ds = genome::generate(&cfg);
        for k in 0..3 {
            for &v in ds.series.dim(k) {
                prop_assert!(v == 1.0 || v == 2.0 || v == 3.0 || v == 4.0);
            }
        }
        // Every channel holds 2 copies of each of the 2 genes.
        for copies in &ds.gene_copies {
            prop_assert_eq!(copies.len(), 4);
        }
    }
}

//! Satellite property: **any** permutation of tile completion order —
//! including duplicate deliveries from steal-then-original-returns races —
//! merges every tile exactly once, in ascending tile order, and the
//! result is bit-identical to the single-node driver's profile.

use mdmp_cluster::{DecodedTile, ReorderMerge};
use mdmp_core::{run_tile_subset, run_with_mode, MatrixProfile};
use mdmp_gpu_sim::{DeviceSpec, GpuSystem};
use mdmp_precision::PrecisionMode;
use mdmp_service::{JobInput, JobSpec, Priority};
use proptest::prelude::*;
use std::sync::OnceLock;

const MODES: [&str; 5] = ["fp64", "fp32", "fp16", "mixed", "fp16c"];
const TILES: usize = 6;

struct Case {
    local: MatrixProfile,
    tiles: Vec<DecodedTile>,
    n_query: usize,
    dims: usize,
}

fn spec(mode: &str) -> JobSpec {
    JobSpec {
        input: JobInput::Synthetic {
            n: 96,
            d: 2,
            pattern: 0,
            noise: 0.3,
            seed: 23,
        },
        m: 8,
        mode: mode.parse::<PrecisionMode>().expect("mode"),
        tiles: TILES,
        gpus: 1,
        priority: Priority::Normal,
        max_retries: 0,
        fault_plan: None,
        tile_retries: 2,
        fused_rows: None,
        tc_chunk_k: None,
        tile_deadline_ms: None,
        deadline_ms: None,
    }
}

/// A worker's wire-form result for one tile, built from a local subset
/// run exactly as `crates/service`'s `tile_exec` encodes it (k-major
/// planes).
fn decoded_tiles(spec: &JobSpec) -> (MatrixProfile, Vec<DecodedTile>, usize, usize) {
    let (reference, query) = spec.materialize().expect("materialize");
    let cfg = spec.config();
    let mut system = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
    let local = run_with_mode(&reference, &query, &cfg, &mut system)
        .expect("local run")
        .profile;
    let indices: Vec<usize> = (0..TILES).collect();
    let mut system = GpuSystem::homogeneous(DeviceSpec::a100(), 1);
    let run =
        run_tile_subset(&reference, &query, &cfg, &mut system, None, &indices).expect("subset run");
    let tiles = run
        .results
        .iter()
        .map(|r| {
            let dims = r.profile.dims();
            let mut p = Vec::with_capacity(dims * r.profile.n_query());
            let mut i = Vec::with_capacity(dims * r.profile.n_query());
            for k in 0..dims {
                p.extend_from_slice(r.profile.profile_dim(k));
                i.extend_from_slice(r.profile.index_dim(k));
            }
            DecodedTile {
                tile: r.tile.index,
                col0: r.tile.col0,
                n_query: r.profile.n_query(),
                dims,
                p,
                i,
                device_seconds: r.device_seconds,
                precalc_hit: r.precalc_cached,
            }
        })
        .collect();
    (local, tiles, query.n_segments(spec.m), reference.dims())
}

fn cases() -> &'static Vec<Case> {
    static CASES: OnceLock<Vec<Case>> = OnceLock::new();
    CASES.get_or_init(|| {
        MODES
            .iter()
            .map(|mode| {
                let spec = spec(mode);
                let (local, tiles, n_query, dims) = decoded_tiles(&spec);
                Case {
                    local,
                    tiles,
                    n_query,
                    dims,
                }
            })
            .collect()
    })
}

/// Deterministic Fisher–Yates from a seed (xorshift64*), so every failing
/// permutation is replayable from the proptest seed alone.
fn permute<T>(items: &mut [T], mut state: u64) {
    state |= 1;
    for i in (1..items.len()).rev() {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let j = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

fn assert_bits(a: &MatrixProfile, b: &MatrixProfile) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.n_query(), b.n_query());
    prop_assert_eq!(a.dims(), b.dims());
    for k in 0..b.dims() {
        for j in 0..b.n_query() {
            prop_assert_eq!(
                a.value(j, k).to_bits(),
                b.value(j, k).to_bits(),
                "value bits differ at dim {} column {}",
                k,
                j
            );
            prop_assert_eq!(a.index(j, k), b.index(j, k));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Permute completion order, duplicate a few deliveries (a stolen
    /// tile whose original holder answers late), merge — bit-identical,
    /// each tile exactly once.
    #[test]
    fn any_completion_order_merges_bit_identically(
        mode_ix in 0usize..MODES.len(),
        seed in any::<u64>(),
        dups in proptest::collection::vec(0usize..TILES * 7, 0..4),
    ) {
        let case = &cases()[mode_ix];
        let mut order: Vec<DecodedTile> = case.tiles.clone();
        permute(&mut order, seed);
        // Inject duplicate deliveries at seed-determined positions.
        for (i, d) in dups.iter().enumerate() {
            let dup = order[d % TILES].clone();
            let at = (d.wrapping_mul(13) + i) % (order.len() + 1);
            order.insert(at, dup);
        }
        let injected = dups.len() as u64;

        let mut merge = ReorderMerge::new(case.n_query, case.dims, TILES);
        let mut accepted = 0usize;
        for tile in order {
            if merge.offer(tile).expect("valid tile") {
                accepted += 1;
            }
        }
        prop_assert_eq!(accepted, TILES, "each tile merges exactly once");
        prop_assert_eq!(merge.duplicates(), injected);
        prop_assert!(merge.is_complete());
        let profile = merge.finish().expect("complete");
        assert_bits(&profile, &case.local)?;
    }
}

/// Deterministic spot check plus the malformed-plane rejections (the
/// `Err` arm `offer` reserves for protocol violations).
#[test]
fn reorder_merge_rejects_planes_that_cannot_belong_to_the_job() {
    let case = &cases()[0];
    let mut merge = ReorderMerge::new(case.n_query, case.dims, TILES);
    let mut bad = case.tiles[0].clone();
    bad.tile = TILES + 5;
    assert!(merge.offer(bad).is_err(), "out-of-range tile index");
    let mut bad = case.tiles[0].clone();
    bad.p.pop();
    assert!(merge.offer(bad).is_err(), "truncated value plane");
    let mut bad = case.tiles[0].clone();
    bad.dims += 1;
    assert!(merge.offer(bad).is_err(), "wrong dimensionality");
    // The table is untouched by rejected offers: a clean merge still works.
    for tile in case.tiles.clone().into_iter().rev() {
        merge.offer(tile).expect("valid tile");
    }
    assert!(merge.is_complete());
}

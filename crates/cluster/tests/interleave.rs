//! Deterministic-interleaving model check (vendor/interleave) of the
//! coordinator's lease table.
//!
//! The model wraps the *real* [`mdmp_cluster::LeaseTable`] — it is pure
//! bookkeeping with no internal locks — in the checker's mutex/condvar,
//! with exactly the production lock protocol of `coordinator.rs`:
//! claim under the lock (wait on the condvar while nothing is claimable),
//! execute outside it, then `complete`/`fail`+`quarantine` under the lock
//! followed by `notify_all`. Every schedule the checker explores is a
//! schedule the real coordinator could see.
//!
//! Checked invariants, across all interleavings:
//!
//! - **no tile is merged twice** (`complete` reports `Merged` at most
//!   once per tile, even with speculative duplicate leases racing);
//! - **no lease is lost** when a node fails and is quarantined mid-job —
//!   even while the survivor is concurrently stealing from the dying
//!   node's shard — so every tile is merged exactly once;
//! - the wait/notify protocol has **no lost wakeup** (a deadlock would
//!   abort the exploration); the negative control shows the checker
//!   catches the bug if the failure path forgets `notify_all`.

use interleave::{explore, spawn, Condvar, Config, Mutex};
use mdmp_cluster::{Completion, LeaseTable, NextLease};
use std::collections::BTreeMap;
use std::sync::Arc;

struct Model {
    table: Mutex<LeaseTable>,
    work: Condvar,
    /// tile -> times `complete` reported `Merged` for it.
    merged: Mutex<BTreeMap<usize, usize>>,
    speculate: bool,
    /// Whether the failure path notifies waiters (true in production; the
    /// negative control turns it off to demonstrate the lost wakeup).
    notify_on_fail: bool,
    /// Whether the dying node actually reached its failure (in some
    /// schedules the survivor finishes the whole job first).
    fail_fired: Mutex<bool>,
}

/// One node thread, with the production claim/execute/complete protocol.
/// `fail_first` makes the node fail its first executed tile and be
/// quarantined (threshold 1), like a killed worker.
fn node_loop(model: &Model, node: usize, fail_first: bool) {
    loop {
        let tile = {
            let mut table = model.table.lock();
            loop {
                match table.next_for(node, model.speculate) {
                    NextLease::Finished => return,
                    NextLease::Tile { tile, .. } => break tile,
                    NextLease::Wait => table = model.work.wait(table),
                }
            }
        };
        // "Execute" happens outside the lock, like the real RPC.
        if fail_first {
            {
                let mut table = model.table.lock();
                table.fail(node, tile);
                table.quarantine(node);
            }
            *model.fail_fired.lock() = true;
            if model.notify_on_fail {
                model.work.notify_all();
            }
            return;
        }
        let completion = {
            let mut table = model.table.lock();
            table.complete(node, tile)
        };
        model.work.notify_all();
        if completion == Completion::Merged {
            *model.merged.lock().entry(tile).or_insert(0) += 1;
        }
    }
}

/// Two nodes over `tiles` tiles; node 1 dies on its first tile when
/// `kill_node_1`. Asserts the exactly-once invariants after both join.
fn lease_model(
    tiles: usize,
    speculate: bool,
    kill_node_1: bool,
    notify_on_fail: bool,
) -> impl Fn() + Send + Sync + 'static {
    move || {
        let model = Arc::new(Model {
            table: Mutex::new(LeaseTable::new(tiles, 2)),
            work: Condvar::new(),
            merged: Mutex::new(BTreeMap::new()),
            speculate,
            notify_on_fail,
            fail_fired: Mutex::new(false),
        });
        let a = {
            let model = Arc::clone(&model);
            spawn(move || node_loop(&model, 0, false))
        };
        let b = {
            let model = Arc::clone(&model);
            spawn(move || node_loop(&model, 1, kill_node_1))
        };
        a.join();
        b.join();
        let merged = model.merged.lock();
        assert_eq!(merged.len(), tiles, "a lease was lost: {:?}", &*merged);
        for (tile, count) in merged.iter() {
            assert_eq!(*count, 1, "tile {tile} merged {count} times");
        }
        let table = model.table.lock();
        assert_eq!(table.merged(), tiles);
        // Without speculation a tile has exactly one holder, so a fired
        // failure always orphans its lease into the re-dispatch queue.
        // (Under speculation a surviving duplicate holder may make the
        // re-dispatch unnecessary — the exactly-once checks above still
        // hold.)
        if kill_node_1 && !speculate && *model.fail_fired.lock() {
            assert!(
                table.redispatches() >= 1,
                "the dead node's lease must be re-dispatched"
            );
        }
    }
}

#[test]
#[cfg_attr(miri, ignore)]
fn full_no_tile_merged_twice_under_speculation() {
    let report = explore(Config::quick(2500), lease_model(3, true, false, true));
    assert!(report.schedules > 1000, "explored {}", report.schedules);
}

#[test]
#[cfg_attr(miri, ignore)]
fn full_no_lease_lost_when_node_quarantined_mid_steal() {
    let report = explore(Config::quick(2500), lease_model(4, false, true, true));
    assert!(report.schedules > 1000, "explored {}", report.schedules);
}

#[test]
#[cfg_attr(miri, ignore)]
fn full_quarantine_under_speculation_still_exactly_once() {
    let report = explore(Config::quick(2500), lease_model(3, true, true, true));
    assert!(report.schedules > 1000, "explored {}", report.schedules);
}

/// Negative control: if the failure path forgets `notify_all`, a survivor
/// parked on the condvar never learns about the re-dispatched tile — the
/// checker reports the deadlock.
#[test]
#[cfg_attr(miri, ignore)]
#[should_panic]
fn full_missing_notify_on_fail_is_caught() {
    explore(Config::quick(60_000), lease_model(4, false, true, false));
}

#[test]
fn smoke_lease_table() {
    explore(Config::quick(48), lease_model(2, true, false, true));
    explore(Config::quick(48), lease_model(3, false, true, true));
}

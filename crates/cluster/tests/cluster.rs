//! In-process cluster integration: three real `mdmp-service` worker nodes
//! behind real TCP sockets, driven by the coordinator. The acceptance bar
//! is **bit-identity**: the merged cluster profile must equal a
//! single-node run of the same job down to the last `f64` bit, in every
//! precision mode, with or without nodes dying mid-job.

use mdmp_cluster::{run_cluster, ClusterConfig, ClusterError};
use mdmp_core::{run_with_mode, MatrixProfile};
use mdmp_gpu_sim::{DeviceSpec, GpuSystem};
use mdmp_service::{serve, JobInput, JobSpec, Priority, Server, Service, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

/// Start one in-process worker node on an ephemeral port.
fn start_node() -> (Server, String) {
    let service = Service::start(ServiceConfig {
        workers: 1,
        devices: 1,
        ..ServiceConfig::default()
    });
    let server = serve(Arc::clone(&service), "127.0.0.1:0").expect("bind node");
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn start_nodes(n: usize) -> (Vec<Server>, Vec<String>) {
    let mut servers = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let (server, addr) = start_node();
        servers.push(server);
        addrs.push(addr);
    }
    (servers, addrs)
}

/// The distributed workload used throughout: synthetic, multi-dim, enough
/// tiles that every node gets a shard and stealing has material to work
/// with.
fn spec(mode: &str) -> JobSpec {
    JobSpec {
        input: JobInput::Synthetic {
            n: 192,
            d: 2,
            pattern: 1,
            noise: 0.3,
            seed: 11,
        },
        m: 16,
        mode: mode.parse().expect("mode"),
        tiles: 8,
        gpus: 1,
        priority: Priority::Normal,
        max_retries: 0,
        fault_plan: None,
        tile_retries: 2,
        fused_rows: None,
        tc_chunk_k: None,
        tile_deadline_ms: None,
        deadline_ms: None,
    }
}

/// The single-node ground truth for a spec, via the ordinary driver.
fn single_node_profile(spec: &JobSpec) -> MatrixProfile {
    let (reference, query) = spec.materialize().expect("materialize");
    let mut system = GpuSystem::homogeneous(DeviceSpec::a100(), spec.gpus);
    run_with_mode(&reference, &query, &spec.config(), &mut system)
        .expect("single-node run")
        .profile
}

/// Bit-level equality, strictly stronger than `PartialEq` (which would
/// also pass for numerically equal but differently produced values and
/// fail for identical NaN bits).
fn assert_bit_identical(cluster: &MatrixProfile, local: &MatrixProfile, what: &str) {
    assert_eq!(cluster.n_query(), local.n_query(), "{what}: n_query");
    assert_eq!(cluster.dims(), local.dims(), "{what}: dims");
    for k in 0..local.dims() {
        for j in 0..local.n_query() {
            assert_eq!(
                cluster.value(j, k).to_bits(),
                local.value(j, k).to_bits(),
                "{what}: value bits differ at dim {k} column {j}"
            );
            assert_eq!(
                cluster.index(j, k),
                local.index(j, k),
                "{what}: index differs at dim {k} column {j}"
            );
        }
    }
}

fn cluster_config(addrs: &[String]) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(addrs.to_vec());
    cfg.request_timeout = Duration::from_secs(30);
    cfg
}

/// Tentpole acceptance: a 3-node cluster is bit-identical to a
/// single-node run in all five precision modes of the paper — and in the
/// PR 7 tensor-core GEMM mode, whose tile-restarted recurrence must not
/// depend on which node computes a tile.
#[test]
fn three_node_cluster_is_bit_identical_in_all_modes() {
    let (_servers, addrs) = start_nodes(3);
    for mode in ["fp64", "fp32", "fp16", "mixed", "fp16c", "fp16-tc"] {
        let spec = spec(mode);
        let local = single_node_profile(&spec);
        let run = run_cluster(&spec, &cluster_config(&addrs))
            .unwrap_or_else(|e| panic!("cluster run in {mode}: {e}"));
        assert_eq!(run.tiles_total, 8);
        assert_bit_identical(&run.profile, &local, mode);
        let merged: u64 = run.nodes.iter().map(|n| n.tiles_merged).sum();
        assert_eq!(merged as usize, run.tiles_total);
        assert!(run.quarantined_nodes().is_empty(), "{mode}: no node died");
    }
}

/// Node loss mid-job: node 1 is killed on its second request; its leased
/// tile and unclaimed shard are re-dispatched to the survivors, the job
/// completes, and the output is still bit-identical.
#[test]
fn node_kill_mid_job_redispatches_and_stays_bit_identical() {
    let (_servers, addrs) = start_nodes(3);
    for mode in ["fp64", "fp32", "fp16", "mixed", "fp16c", "fp16-tc"] {
        let spec = spec(mode);
        let local = single_node_profile(&spec);
        let mut cluster = cluster_config(&addrs);
        cluster.fault_plan = "nodekill@1:1".parse().expect("fault plan");
        let run = run_cluster(&spec, &cluster)
            .unwrap_or_else(|e| panic!("cluster run with node loss in {mode}: {e}"));
        assert_bit_identical(&run.profile, &local, mode);
        assert_eq!(run.quarantined_nodes(), vec![1], "{mode}");
        assert!(run.nodes[1].quarantined, "{mode}");
        assert!(
            run.redispatches >= 1,
            "{mode}: the killed node's leased tile must be re-dispatched"
        );
        let merged: u64 = run.nodes.iter().map(|n| n.tiles_merged).sum();
        assert_eq!(merged as usize, run.tiles_total, "{mode}");
    }
}

/// A dropped connection is transient: the node fails one request, the
/// tile is re-dispatched, the node reconnects and keeps serving.
#[test]
fn connection_drop_is_transient_not_fatal() {
    let (_servers, addrs) = start_nodes(2);
    let spec = spec("fp32");
    let local = single_node_profile(&spec);
    let mut cluster = cluster_config(&addrs);
    cluster.fault_plan = "nodedrop@0:0".parse().expect("fault plan");
    let run = run_cluster(&spec, &cluster).expect("cluster run");
    assert_bit_identical(&run.profile, &local, "fp32 after drop");
    assert_eq!(run.nodes[0].failures, 1);
    assert!(!run.nodes[0].quarantined, "one drop must not quarantine");
    assert!(run.redispatches >= 1);
}

/// Every node dead before the job finishes is the typed
/// [`ClusterError::AllNodesDown`] — never a hang, never a partial
/// profile pretending to be complete.
#[test]
fn losing_every_node_is_a_typed_error() {
    let (_servers, addrs) = start_nodes(2);
    let spec = spec("fp16");
    let mut cluster = cluster_config(&addrs);
    cluster.fault_plan = "nodekill@0:0,nodekill@1:0".parse().expect("fault plan");
    match run_cluster(&spec, &cluster) {
        Err(ClusterError::AllNodesDown { merged, expected }) => {
            assert_eq!(merged, 0);
            assert_eq!(expected, 8);
        }
        other => panic!("expected AllNodesDown, got {other:?}"),
    }
}

/// An unreachable address is also just a node failure: the cluster
/// quarantines it and the survivors finish the job.
#[test]
fn unreachable_node_is_quarantined_and_survivors_finish() {
    let (_servers, mut addrs) = start_nodes(2);
    // A port nothing listens on (reserved port 1 refuses immediately).
    addrs.push("127.0.0.1:1".to_string());
    let spec = spec("mixed");
    let local = single_node_profile(&spec);
    let run = run_cluster(&spec, &cluster_config(&addrs)).expect("cluster run");
    assert_bit_identical(&run.profile, &local, "mixed with dead node");
    assert!(run.nodes[2].quarantined);
    assert_eq!(run.nodes[2].tiles_merged, 0);
}

/// In-memory jobs cannot be shipped to remote nodes: typed `BadSpec`.
#[test]
fn in_memory_jobs_are_rejected() {
    let spec = spec("fp64");
    let (reference, query) = spec.materialize().expect("materialize");
    let in_memory = JobSpec {
        input: JobInput::InMemory { reference, query },
        ..spec
    };
    match run_cluster(&in_memory, &cluster_config(&["127.0.0.1:1".to_string()])) {
        Err(ClusterError::BadSpec(e)) => assert!(e.contains("in-memory"), "{e}"),
        other => panic!("expected BadSpec, got {other:?}"),
    }
}

//! Transport parity at cluster scope: a coordinator forced onto JSON
//! lines and one negotiating the binary frame upgrade must merge
//! **bit-identical** profiles from the same nodes — and the binary run
//! must move materially fewer bytes.

use mdmp_cluster::{run_cluster, ClusterConfig};
use mdmp_core::{run_with_mode, MatrixProfile};
use mdmp_gpu_sim::{DeviceSpec, GpuSystem};
use mdmp_service::WirePreference;
use mdmp_service::{serve, JobInput, JobSpec, Priority, Server, Service, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

fn start_nodes(n: usize) -> (Vec<Server>, Vec<String>) {
    let mut servers = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let service = Service::start(ServiceConfig {
            workers: 1,
            devices: 1,
            ..ServiceConfig::default()
        });
        let server = serve(Arc::clone(&service), "127.0.0.1:0").expect("bind node");
        addrs.push(server.local_addr().to_string());
        servers.push(server);
    }
    (servers, addrs)
}

fn spec(mode: &str) -> JobSpec {
    JobSpec {
        input: JobInput::Synthetic {
            n: 192,
            d: 2,
            pattern: 1,
            noise: 0.3,
            seed: 11,
        },
        m: 16,
        mode: mode.parse().expect("mode"),
        tiles: 8,
        gpus: 1,
        priority: Priority::Normal,
        max_retries: 0,
        fault_plan: None,
        tile_retries: 2,
        fused_rows: None,
        tc_chunk_k: None,
        tile_deadline_ms: None,
        deadline_ms: None,
    }
}

fn single_node_profile(spec: &JobSpec) -> MatrixProfile {
    let (reference, query) = spec.materialize().expect("materialize");
    let mut system = GpuSystem::homogeneous(DeviceSpec::a100(), spec.gpus);
    run_with_mode(&reference, &query, &spec.config(), &mut system)
        .expect("single-node run")
        .profile
}

fn assert_bit_identical(a: &MatrixProfile, b: &MatrixProfile, what: &str) {
    assert_eq!(a.n_query(), b.n_query(), "{what}: n_query");
    assert_eq!(a.dims(), b.dims(), "{what}: dims");
    for k in 0..b.dims() {
        for j in 0..b.n_query() {
            assert_eq!(
                a.value(j, k).to_bits(),
                b.value(j, k).to_bits(),
                "{what}: value bits differ at dim {k} column {j}"
            );
            assert_eq!(
                a.index(j, k),
                b.index(j, k),
                "{what}: index differs at dim {k} column {j}"
            );
        }
    }
}

fn config(addrs: &[String], wire: WirePreference) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(addrs.to_vec());
    cfg.request_timeout = Duration::from_secs(30);
    cfg.wire = wire;
    cfg
}

/// JSON and binary transports merge bit-identical profiles, both equal to
/// the single-node ground truth, in the wide, narrow-float and half
/// precision modes — and the binary run moves less than half the bytes.
#[test]
fn binary_and_json_transports_merge_bit_identically() {
    let (_servers, addrs) = start_nodes(2);
    for mode in ["fp64", "fp32", "fp16"] {
        let spec = spec(mode);
        let local = single_node_profile(&spec);
        let json_run = run_cluster(&spec, &config(&addrs, WirePreference::Json))
            .unwrap_or_else(|e| panic!("json cluster run in {mode}: {e}"));
        let bin_run = run_cluster(&spec, &config(&addrs, WirePreference::Auto))
            .unwrap_or_else(|e| panic!("binary cluster run in {mode}: {e}"));
        assert_bit_identical(&json_run.profile, &local, &format!("{mode} json"));
        assert_bit_identical(&bin_run.profile, &local, &format!("{mode} binary"));
        assert!(
            json_run.nodes.iter().all(|n| !n.binary_wire),
            "{mode}: forced-JSON run must not negotiate frames"
        );
        assert_eq!(
            bin_run.binary_wire_nodes(),
            addrs.len(),
            "{mode}: every node must accept the upgrade"
        );
        let json_bytes = json_run.wire_bytes_received();
        let bin_bytes = bin_run.wire_bytes_received();
        assert!(
            bin_bytes * 2 < json_bytes,
            "{mode}: binary moved {bin_bytes} B vs JSON {json_bytes} B"
        );
    }
}

/// Node loss on the binary transport behaves exactly as on JSON: the
/// kill is contained, tiles re-dispatch, and the merged profile stays
/// bit-identical.
#[test]
fn node_kill_on_binary_wire_stays_bit_identical() {
    let (_servers, addrs) = start_nodes(3);
    let spec = spec("fp32");
    let local = single_node_profile(&spec);
    let mut cluster = config(&addrs, WirePreference::Auto);
    cluster.fault_plan = "nodekill@1:1".parse().expect("fault plan");
    let run = run_cluster(&spec, &cluster).expect("cluster run");
    assert_bit_identical(&run.profile, &local, "fp32 binary with node loss");
    assert_eq!(run.quarantined_nodes(), vec![1]);
    assert!(run.redispatches >= 1);
}

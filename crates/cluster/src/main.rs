//! `mdmp-cluster` binary: worker node (`serve`) and cluster job
//! submission (`submit`). `mdmp cluster …` forwards here.

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        println!("{}", mdmp_cluster::cli::usage());
        std::process::exit(2);
    }
    if let Err(e) = mdmp_cluster::cli::run(&raw) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

//! The `mdmp-cluster` command line: `serve` runs one worker node (a plain
//! `mdmp-service` endpoint), `submit` shards a job across a set of nodes
//! through [`crate::run_cluster`]. The `mdmp` umbrella binary forwards
//! `mdmp cluster …` here, so both entry points share one implementation.

use crate::coordinator::{run_cluster, ClusterConfig};
use mdmp_core::MdmpConfig;
use mdmp_faults::{ClusterFaultPlan, FaultPlan};
use mdmp_gpu_sim::DeviceSpec;
use mdmp_precision::PrecisionMode;
use mdmp_service::{serve as serve_tcp, JobInput, JobSpec, Priority, Service, ServiceConfig};
use std::collections::{BTreeMap, BTreeSet};
use std::str::FromStr;
use std::sync::Arc;
use std::time::Duration;

/// Boolean flags (no value token follows them).
const FLAGS: [&str; 3] = ["no-speculate", "metrics", "help"];

/// Minimal `--key value` / `--flag` parser for the cluster subcommands.
struct Args {
    values: BTreeMap<String, String>,
    flags: BTreeSet<String>,
    seen: std::cell::RefCell<BTreeSet<String>>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut values = BTreeMap::new();
        let mut flags = BTreeSet::new();
        let mut it = raw.iter();
        while let Some(token) = it.next() {
            let name = token
                .strip_prefix("--")
                .ok_or_else(|| format!("unexpected argument '{token}' (expected --key)"))?;
            if FLAGS.contains(&name) {
                flags.insert(name.to_string());
                continue;
            }
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            values.insert(name.to_string(), value.clone());
        }
        Ok(Args {
            values,
            flags,
            seen: std::cell::RefCell::new(BTreeSet::new()),
        })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.seen.borrow_mut().insert(key.to_string());
        self.values.get(key).map(String::as_str)
    }

    fn get_or<T: FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            Some(raw) => raw
                .parse::<T>()
                .map_err(|e| format!("--{key} '{raw}': {e}")),
            None => Ok(default),
        }
    }

    fn get_opt<T: FromStr>(&self, key: &str) -> Result<Option<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            Some(raw) => raw
                .parse::<T>()
                .map(Some)
                .map_err(|e| format!("--{key} '{raw}': {e}")),
            None => Ok(None),
        }
    }

    fn require<T: FromStr>(&self, key: &str) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            Some(raw) => raw
                .parse::<T>()
                .map_err(|e| format!("--{key} '{raw}': {e}")),
            None => Err(format!("missing required --{key}")),
        }
    }

    fn flag(&self, key: &str) -> bool {
        self.flags.contains(key)
    }

    fn reject_unknown(&self) -> Result<(), String> {
        let seen = self.seen.borrow();
        for key in self.values.keys() {
            if !seen.contains(key) {
                return Err(format!("unknown option --{key}"));
            }
        }
        Ok(())
    }
}

/// Usage text for both the standalone binary and `mdmp cluster`.
pub fn usage() -> &'static str {
    "mdmp-cluster — distributed tile-sharding coordinator

  serve   run one worker node (an mdmp-service TCP endpoint)
          --addr A (127.0.0.1:7661) --workers N (2) --devices N (2)
          --queue N (64) --cache-mb N (256) --host-workers N (0=auto)
          --device a100|v100|cpu (a100)

  submit  shard a job across worker nodes and merge bit-identically
          --nodes host:port,host:port,…   (required)
          --m N (required)
          --mode fp64|fp32|fp16|mixed|fp16c|fp16-tc|bf16-tc|tf32-tc (fp64)
          --tc-chunk-k 4|8|16 (TC modes: env MDMP_TC_CHUNK_K, else format default)
          --tiles N (4 per node) --gpus N (1) --priority P (normal)
          --n N (4096) --d N (1) --pattern N (0) --noise X (0.3) --seed N (42)
          --reference FILE [--query FILE]   (CSV instead of synthetic)
          --tile-retries N (2) --tile-timeout-ms MS --fault-plan SPEC
          --quarantine-threshold N (3) --timeout-s S (60) --no-speculate
          --cluster-faults SPEC (nodedrop@N:S,nodekill@N:S,…) --metrics
          --wire auto|json (auto; env MDMP_WIRE=json forces JSON lines)"
}

/// Run one cluster subcommand from raw arguments (`raw[0]` is the
/// subcommand).
pub fn run(raw: &[String]) -> Result<(), String> {
    match raw.first().map(String::as_str) {
        Some("serve") => serve(&Args::parse(&raw[1..])?),
        Some("submit") => submit(&Args::parse(&raw[1..])?),
        Some("--help") | Some("help") | None => {
            println!("{}", usage());
            Ok(())
        }
        Some(other) => Err(format!(
            "unknown cluster subcommand '{other}' (serve, submit)"
        )),
    }
}

fn device_spec(name: &str) -> Result<DeviceSpec, String> {
    match name.to_ascii_lowercase().as_str() {
        "a100" => Ok(DeviceSpec::a100()),
        "v100" => Ok(DeviceSpec::v100()),
        "cpu" | "skylake" => Ok(DeviceSpec::skylake_16c()),
        other => Err(format!("unknown device '{other}' (a100, v100, cpu)")),
    }
}

/// `mdmp-cluster serve` — run one worker node until a `shutdown` request
/// has been fully served.
fn serve(args: &Args) -> Result<(), String> {
    let addr = args.get_or("addr", "127.0.0.1:7661".to_string())?;
    let workers: usize = args.get_or("workers", 2)?;
    let queue: usize = args.get_or("queue", 64)?;
    let devices: usize = args.get_or("devices", 2)?;
    let cache_mb: u64 = args.get_or("cache-mb", 256)?;
    let host_workers: usize = args.get_or("host-workers", 0)?;
    let device = device_spec(&args.get_or("device", "a100".to_string())?)?;
    args.reject_unknown()?;
    if workers == 0 || devices == 0 || queue == 0 {
        return Err("--workers, --devices and --queue must be positive".into());
    }

    let service = Service::start(ServiceConfig {
        workers,
        queue_capacity: queue,
        device: device.clone(),
        devices,
        cache_bytes: cache_mb << 20,
        host_workers,
        ..ServiceConfig::default()
    });
    let mut server = serve_tcp(Arc::clone(&service), &addr).map_err(|e| e.to_string())?;
    println!(
        "mdmp-cluster node listening on {} ({workers} workers, {devices}x {})",
        server.local_addr(),
        device.name
    );
    println!(
        "stop with: mdmp status --addr {} --shutdown",
        server.local_addr()
    );
    while !server.shutdown_served() {
        std::thread::sleep(Duration::from_millis(50));
    }
    server.stop();
    println!("mdmp-cluster node stopped");
    Ok(())
}

/// Build the distributable job spec from `submit` arguments.
fn job_spec(args: &Args, n_nodes: usize) -> Result<JobSpec, String> {
    let input = match args.get_opt::<String>("reference")? {
        Some(reference) => JobInput::Csv {
            reference: reference.into(),
            query: args.get_opt::<String>("query")?.map(Into::into),
        },
        None => JobInput::Synthetic {
            n: args.get_or("n", 4096)?,
            d: args.get_or("d", 1)?,
            pattern: args.get_or("pattern", 0)?,
            noise: args.get_or("noise", 0.3)?,
            seed: args.get_or("seed", 42)?,
        },
    };
    let fault_plan = match args.get_opt::<String>("fault-plan")? {
        Some(spec) => Some(Arc::new(
            spec.parse::<FaultPlan>()
                .map_err(|e| format!("--fault-plan: {e}"))?,
        )),
        None => None,
    };
    let m: usize = args.require("m")?;
    let mode = args
        .get_or("mode", "fp64".to_string())?
        .parse::<PrecisionMode>()?;
    let tc_chunk_k = match args.get_opt::<usize>("tc-chunk-k")? {
        Some(k) => {
            if !mdmp_gpu_sim::MMA_CHUNK_SIZES.contains(&k) {
                return Err(format!(
                    "--tc-chunk-k must be one of {:?}, got {k}",
                    mdmp_gpu_sim::MMA_CHUNK_SIZES
                ));
            }
            Some(k)
        }
        // For TC modes, pin the chunk at the coordinator (env override or
        // format default, same precedence as a local run): the accumulator
        // layout is part of the numerical contract, and letting each node
        // resolve its own MDMP_TC_CHUNK_K would let differing node
        // environments break cluster-vs-single-node bit-identity.
        None => mode
            .tc_input()
            .map(|input| MdmpConfig::new(m, mode).resolved_tc_chunk_k(input)),
    };
    Ok(JobSpec {
        input,
        m,
        mode,
        // Default to a few tiles per node so sharding and stealing have
        // something to work with.
        tiles: args.get_or("tiles", (n_nodes * 4).max(1))?,
        gpus: args.get_or("gpus", 1)?,
        priority: args
            .get_or("priority", "normal".to_string())?
            .parse::<Priority>()?,
        max_retries: 0,
        fault_plan,
        tile_retries: args.get_or("tile-retries", 2)?,
        fused_rows: None,
        tc_chunk_k,
        tile_deadline_ms: args.get_opt("tile-timeout-ms")?,
        deadline_ms: None,
    })
}

/// `mdmp-cluster submit` — run one job across the cluster.
fn submit(args: &Args) -> Result<(), String> {
    let nodes: Vec<String> = args
        .require::<String>("nodes")?
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect();
    if nodes.is_empty() {
        return Err("--nodes needs at least one host:port".into());
    }
    let spec = job_spec(args, nodes.len())?;
    let mut cluster = ClusterConfig::new(nodes);
    cluster.quarantine_threshold = args.get_or("quarantine-threshold", 3)?;
    cluster.request_timeout = Duration::from_secs_f64(args.get_or("timeout-s", 60.0)?);
    cluster.speculate = !args.flag("no-speculate");
    if let Some(plan) = args.get_opt::<String>("cluster-faults")? {
        cluster.fault_plan = plan
            .parse::<ClusterFaultPlan>()
            .map_err(|e| format!("--cluster-faults: {e}"))?;
    }
    if let Some(wire) = args.get_opt::<String>("wire")? {
        cluster.wire = match wire.to_ascii_lowercase().as_str() {
            "auto" | "binary" => mdmp_service::WirePreference::Auto,
            "json" => mdmp_service::WirePreference::Json,
            other => return Err(format!("--wire must be auto or json, got '{other}'")),
        };
    }
    let metrics = args.flag("metrics");
    args.reject_unknown()?;

    let run = run_cluster(&spec, &cluster).map_err(|e| e.to_string())?;
    println!(
        "merged {} tiles into a {} x {} profile in {:.3}s wall",
        run.tiles_total,
        run.profile.n_query(),
        run.profile.dims(),
        run.wall_seconds
    );
    println!(
        "steals {} redispatches {} duplicates dropped {} precalc {}h/{}m",
        run.steals,
        run.redispatches,
        run.duplicates_dropped,
        run.precalc_hits(),
        run.precalc_misses()
    );
    println!(
        "modelled makespan {:.6}s -> {:.1} tiles/s",
        run.modelled_makespan_seconds(),
        run.modelled_tiles_per_second()
    );
    println!(
        "wire: {} sent / {} received over {}/{} binary-frame nodes",
        run.wire_bytes_sent(),
        run.wire_bytes_received(),
        run.binary_wire_nodes(),
        run.nodes.len()
    );
    for (i, node) in run.nodes.iter().enumerate() {
        println!(
            "node {i} {}: merged {} stolen {} failures {} device {:.6}s wire {}/{}B {}{}",
            node.addr,
            node.tiles_merged,
            node.tiles_stolen,
            node.failures,
            node.device_seconds,
            node.bytes_sent,
            node.bytes_received,
            if node.binary_wire { "binary" } else { "json" },
            if node.quarantined { " QUARANTINED" } else { "" }
        );
    }
    if metrics {
        print!("{}", run.metrics_text());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unknown_subcommand_and_options_are_rejected() {
        assert!(run(&raw(&["frobnicate"])).is_err());
        let args = Args::parse(&raw(&["--bogus", "1"])).unwrap();
        assert!(args.reject_unknown().is_err());
        assert!(Args::parse(&raw(&["positional"])).is_err());
        assert!(Args::parse(&raw(&["--m"])).is_err());
    }

    #[test]
    fn job_spec_defaults_scale_tiles_with_nodes() {
        let args = Args::parse(&raw(&["--m", "8"])).unwrap();
        let spec = job_spec(&args, 3).unwrap();
        assert_eq!(spec.tiles, 12);
        assert_eq!(spec.m, 8);
        assert!(matches!(spec.input, JobInput::Synthetic { .. }));
    }

    #[test]
    fn submit_requires_nodes() {
        let err = submit(&Args::parse(&raw(&["--m", "8"])).unwrap()).unwrap_err();
        assert!(err.contains("--nodes"), "{err}");
    }

    #[test]
    fn cluster_fault_spec_is_parsed() {
        let args = Args::parse(&raw(&["--cluster-faults", "bogus"])).unwrap();
        let mut cluster = ClusterConfig::new(vec!["x".into()]);
        let result = args
            .get_opt::<String>("cluster-faults")
            .unwrap()
            .unwrap()
            .parse::<ClusterFaultPlan>();
        assert!(result.is_err());
        cluster.fault_plan = "nodekill@1:0".parse().unwrap();
        assert!(cluster.fault_plan.kills_node(1));
    }
}

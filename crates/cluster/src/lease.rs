//! The coordinator's lease table: which node holds which tile, what is
//! still queued, and what has been merged.
//!
//! The table is pure bookkeeping — no I/O, no time — guarded by one mutex
//! in the coordinator, so every transition is atomic with respect to the
//! node threads. The `vendor/interleave` model in `tests/interleave.rs`
//! mirrors exactly this structure and checks its two safety invariants
//! under exhaustive schedule exploration: **no tile is merged twice** and
//! **no lease is lost** when a node is quarantined mid-steal.
//!
//! Scheduling policy, in claim order (DESIGN.md §12):
//!
//! 1. re-dispatched tiles from failed nodes (`requeue`) — highest urgency
//!    because they are the oldest unfinished work;
//! 2. the node's own shard, front to back;
//! 3. **steal** from the longest remaining shard, back to front, so the
//!    victim's locality at its front is preserved;
//! 4. with speculation on, **duplicate-lease** the smallest in-flight tile
//!    held only by other nodes — straggler insurance; the merge keeps the
//!    first result and drops the rest.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// What `next_for` hands a node asking for work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextLease {
    /// A tile to execute.
    Tile {
        /// The tile's index in the job's global tiling.
        tile: usize,
        /// Whether the tile was stolen from another node's shard.
        stolen: bool,
        /// Whether this is a speculative duplicate of an in-flight lease.
        duplicate: bool,
    },
    /// Nothing claimable right now, but leases are in flight — wait for a
    /// completion or a re-dispatch.
    Wait,
    /// Every tile is merged; the node can disconnect.
    Finished,
}

/// What a completed tile execution turned out to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// First result for the tile: merge it.
    Merged,
    /// A duplicate (speculation race or a re-dispatched tile whose
    /// original holder answered after all): drop it.
    Duplicate,
}

/// The lease table (see the module docs for the scheduling policy).
#[derive(Debug)]
pub struct LeaseTable {
    shards: Vec<VecDeque<usize>>,
    requeue: VecDeque<usize>,
    leased: BTreeMap<usize, BTreeSet<usize>>,
    done: BTreeSet<usize>,
    total: usize,
    steals: u64,
    redispatches: u64,
    duplicates_dropped: u64,
}

impl LeaseTable {
    /// Shard tiles `0..total` across `nodes` contiguous shards of
    /// near-equal size (earlier shards get the remainder).
    pub fn new(total: usize, nodes: usize) -> LeaseTable {
        let nodes = nodes.max(1);
        let base = total / nodes;
        let rem = total % nodes;
        let mut shards = Vec::with_capacity(nodes);
        let mut next = 0usize;
        for node in 0..nodes {
            let len = base + usize::from(node < rem);
            shards.push((next..next + len).collect());
            next += len;
        }
        LeaseTable {
            shards,
            requeue: VecDeque::new(),
            leased: BTreeMap::new(),
            done: BTreeSet::new(),
            total,
            steals: 0,
            redispatches: 0,
            duplicates_dropped: 0,
        }
    }

    /// Claim the next tile for `node` (see the module docs for the
    /// policy). `speculate` enables duplicate leases of in-flight tiles.
    pub fn next_for(&mut self, node: usize, speculate: bool) -> NextLease {
        if self.done.len() == self.total {
            return NextLease::Finished;
        }
        if let Some(tile) = self.requeue.pop_front() {
            self.lease(node, tile);
            return NextLease::Tile {
                tile,
                stolen: false,
                duplicate: false,
            };
        }
        if let Some(tile) = self.shards[node].pop_front() {
            self.lease(node, tile);
            return NextLease::Tile {
                tile,
                stolen: false,
                duplicate: false,
            };
        }
        // Steal from the longest remaining shard (ties: lowest node index,
        // for determinism of the decision given the same table state).
        let victim = (0..self.shards.len())
            .filter(|&j| j != node && !self.shards[j].is_empty())
            .max_by_key(|&j| (self.shards[j].len(), usize::MAX - j));
        if let Some(victim) = victim {
            if let Some(tile) = self.shards[victim].pop_back() {
                self.steals += 1;
                self.lease(node, tile);
                return NextLease::Tile {
                    tile,
                    stolen: true,
                    duplicate: false,
                };
            }
        }
        if speculate {
            let candidate = self
                .leased
                .iter()
                .find(|(tile, holders)| !holders.contains(&node) && !self.done.contains(tile))
                .map(|(&tile, _)| tile);
            if let Some(tile) = candidate {
                self.lease(node, tile);
                return NextLease::Tile {
                    tile,
                    stolen: false,
                    duplicate: true,
                };
            }
        }
        NextLease::Wait
    }

    fn lease(&mut self, node: usize, tile: usize) {
        self.leased.entry(tile).or_default().insert(node);
    }

    /// Record that `node` delivered `tile`. The first delivery wins; later
    /// ones (speculation races, re-dispatch races) are reported as
    /// duplicates for the caller to drop.
    pub fn complete(&mut self, node: usize, tile: usize) -> Completion {
        if let Some(holders) = self.leased.get_mut(&tile) {
            holders.remove(&node);
            if holders.is_empty() {
                self.leased.remove(&tile);
            }
        }
        if self.done.insert(tile) {
            // First result: retire every outstanding lease on the tile so
            // speculation stops targeting it.
            self.leased.remove(&tile);
            Completion::Merged
        } else {
            self.duplicates_dropped += 1;
            Completion::Duplicate
        }
    }

    /// Record that `node`'s attempt at `tile` failed. The lease is
    /// released; if no other node holds one and the tile is not merged, it
    /// is queued for re-dispatch.
    pub fn fail(&mut self, node: usize, tile: usize) {
        let mut orphaned = false;
        if let Some(holders) = self.leased.get_mut(&tile) {
            holders.remove(&node);
            if holders.is_empty() {
                self.leased.remove(&tile);
                orphaned = true;
            }
        }
        if orphaned && !self.done.contains(&tile) {
            self.requeue.push_back(tile);
            self.redispatches += 1;
        }
    }

    /// Remove `node` from the cluster: release every lease it holds (each
    /// re-dispatched via [`LeaseTable::fail`] semantics) and move its
    /// unclaimed shard to the re-dispatch queue.
    pub fn quarantine(&mut self, node: usize) {
        let held: Vec<usize> = self
            .leased
            .iter()
            .filter(|(_, holders)| holders.contains(&node))
            .map(|(&tile, _)| tile)
            .collect();
        for tile in held {
            self.fail(node, tile);
        }
        while let Some(tile) = self.shards[node].pop_front() {
            self.requeue.push_back(tile);
        }
    }

    /// Tiles merged so far.
    pub fn merged(&self) -> usize {
        self.done.len()
    }

    /// Total tiles in the job.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Tiles stolen across shards.
    pub fn steals(&self) -> u64 {
        self.steals
    }

    /// Tiles queued for re-dispatch after a failed lease.
    pub fn redispatches(&self) -> u64 {
        self.redispatches
    }

    /// Duplicate results dropped by the first-delivery-wins rule.
    pub fn duplicates_dropped(&self) -> u64 {
        self.duplicates_dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_near_equal_shards() {
        let mut table = LeaseTable::new(8, 3);
        // Shards: [0,1,2], [3,4,5], [6,7].
        assert_eq!(
            table.next_for(0, false),
            NextLease::Tile {
                tile: 0,
                stolen: false,
                duplicate: false
            }
        );
        assert_eq!(
            table.next_for(2, false),
            NextLease::Tile {
                tile: 6,
                stolen: false,
                duplicate: false
            }
        );
    }

    #[test]
    fn drained_node_steals_from_longest_shard() {
        let mut table = LeaseTable::new(6, 2);
        // Node 0 drains its shard [0,1,2].
        for expect in 0..3 {
            match table.next_for(0, false) {
                NextLease::Tile { tile, stolen, .. } => {
                    assert_eq!(tile, expect);
                    assert!(!stolen);
                    table.complete(0, tile);
                }
                other => panic!("expected a tile, got {other:?}"),
            }
        }
        // Node 1 untouched: node 0 now steals from the back of [3,4,5].
        match table.next_for(0, false) {
            NextLease::Tile { tile, stolen, .. } => {
                assert_eq!(tile, 5);
                assert!(stolen);
            }
            other => panic!("expected a steal, got {other:?}"),
        }
        assert_eq!(table.steals(), 1);
    }

    #[test]
    fn first_completion_wins_duplicates_dropped() {
        let mut table = LeaseTable::new(2, 2);
        let NextLease::Tile { tile, .. } = table.next_for(0, false) else {
            panic!("no tile");
        };
        // Node 1 drains its own shard, then speculative-leases node 0's
        // in-flight tile.
        let NextLease::Tile { tile: own, .. } = table.next_for(1, true) else {
            panic!("no tile");
        };
        table.complete(1, own);
        let NextLease::Tile { duplicate, .. } = table.next_for(1, true) else {
            panic!("no speculative tile");
        };
        assert!(duplicate);
        assert_eq!(table.complete(1, tile), Completion::Merged);
        assert_eq!(table.complete(0, tile), Completion::Duplicate);
        assert_eq!(table.duplicates_dropped(), 1);
        assert_eq!(table.merged(), 2);
        assert_eq!(table.next_for(0, true), NextLease::Finished);
    }

    #[test]
    fn failed_lease_is_redispatched_and_quarantine_drains_the_shard() {
        let mut table = LeaseTable::new(4, 2);
        let NextLease::Tile { tile, .. } = table.next_for(1, false) else {
            panic!("no tile");
        };
        assert_eq!(tile, 2);
        table.fail(1, tile);
        table.quarantine(1);
        assert_eq!(table.redispatches(), 1);
        // Node 0 now sees the re-dispatch queue first (the failed tile,
        // then the quarantined node's drained shard), then its own shard.
        let mut order = Vec::new();
        loop {
            match table.next_for(0, false) {
                NextLease::Tile { tile, .. } => {
                    order.push(tile);
                    table.complete(0, tile);
                }
                NextLease::Finished => break,
                NextLease::Wait => panic!("nothing should be in flight"),
            }
        }
        assert_eq!(order, vec![2, 3, 0, 1]);
    }

    #[test]
    fn wait_only_while_leases_are_in_flight() {
        let mut table = LeaseTable::new(1, 2);
        let NextLease::Tile { tile, .. } = table.next_for(0, false) else {
            panic!("no tile");
        };
        assert_eq!(table.next_for(1, false), NextLease::Wait);
        table.complete(0, tile);
        assert_eq!(table.next_for(1, false), NextLease::Finished);
    }
}

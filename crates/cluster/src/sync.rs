//! Poison-absorbing lock helpers (same contract as the service's): every
//! structure the coordinator guards stays consistent under unwinding
//! because updates are single-assignment or re-checked by the caller, so a
//! poisoned mutex carries no torn state worth propagating as a panic on
//! the request path.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// Lock `mutex`, absorbing poison.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Wait on `condvar` with a timeout, absorbing poison.
pub(crate) fn wait_timeout<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    condvar
        .wait_timeout(guard, timeout)
        .unwrap_or_else(PoisonError::into_inner)
}

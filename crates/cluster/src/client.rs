//! One node's client half of the tile-lease protocol: a persistent
//! JSON-lines TCP connection to an `mdmp-service` worker, reconnected on
//! demand, plus the decoding of `tile_exec` replies back into result
//! planes (bit-exact, via the hex `f64` encoding).

use mdmp_service::{decode_plane_hex, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One decoded tile result from a worker: the tile's identity in the
/// global tiling, its partial profile planes (k-major, bit-exact), and
/// the modelled device seconds it cost the node.
#[derive(Debug, Clone)]
pub struct DecodedTile {
    /// Tile index in the job's global tiling.
    pub tile: usize,
    /// First query column the tile covers.
    pub col0: usize,
    /// Query columns the tile covers.
    pub n_query: usize,
    /// Profile dimensions.
    pub dims: usize,
    /// Value plane, k-major (`dims * n_query` elements).
    pub p: Vec<f64>,
    /// Index plane, k-major.
    pub i: Vec<i64>,
    /// Modelled device seconds the tile cost the node.
    pub device_seconds: f64,
    /// Whether the worker served the precalculation from its cache.
    pub precalc_hit: bool,
}

/// Why a node request failed, as the coordinator's health ledger sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeError {
    /// Transport failure: connect refused, connection dropped, read
    /// timeout (deadline overrun), or an injected cluster fault.
    Io(String),
    /// The worker answered, but with an error (bad spec, exhausted tile
    /// retries) or a malformed reply.
    Remote(String),
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeError::Io(e) => write!(f, "io: {e}"),
            NodeError::Remote(e) => write!(f, "remote: {e}"),
        }
    }
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A lazily (re)connected JSON-lines client for one worker node.
pub struct NodeClient {
    addr: String,
    timeout: Duration,
    conn: Option<Conn>,
    killed: bool,
}

impl NodeClient {
    /// A client for the worker at `addr`; `timeout` bounds each reply
    /// read (a node that overruns it is treated as failed).
    pub fn new(addr: &str, timeout: Duration) -> NodeClient {
        NodeClient {
            addr: addr.to_string(),
            timeout,
            conn: None,
            killed: false,
        }
    }

    /// The node's address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Mark the node as killed: the connection is severed and every later
    /// request fails as a crashed machine's would (injected
    /// [`mdmp_faults::NodeFaultKind::Kill`]).
    pub fn kill(&mut self) {
        self.killed = true;
        self.conn = None;
    }

    /// Whether the node was killed.
    pub fn is_killed(&self) -> bool {
        self.killed
    }

    /// Sever the connection (it reconnects on the next request).
    pub fn disconnect(&mut self) {
        self.conn = None;
    }

    fn connect(&mut self) -> Result<&mut Conn, NodeError> {
        if self.killed {
            return Err(NodeError::Io(format!("node {} is killed", self.addr)));
        }
        if self.conn.is_none() {
            let stream = TcpStream::connect(&self.addr)
                .map_err(|e| NodeError::Io(format!("connect {}: {e}", self.addr)))?;
            stream
                .set_read_timeout(Some(self.timeout))
                .map_err(|e| NodeError::Io(format!("set timeout: {e}")))?;
            let writer = stream
                .try_clone()
                .map_err(|e| NodeError::Io(format!("clone stream: {e}")))?;
            self.conn = Some(Conn {
                reader: BufReader::new(stream),
                writer,
            });
        }
        match self.conn.as_mut() {
            Some(conn) => Ok(conn),
            None => Err(NodeError::Io("connection unavailable".into())),
        }
    }

    /// Send one request line and read one response line. Any transport
    /// error severs the connection so the next request reconnects.
    pub fn request(&mut self, request: &Json) -> Result<Json, NodeError> {
        let conn = self.connect()?;
        let sent = writeln!(conn.writer, "{request}").and_then(|_| conn.writer.flush());
        if let Err(e) = sent {
            self.conn = None;
            return Err(NodeError::Io(format!("send: {e}")));
        }
        let mut line = String::new();
        match conn.reader.read_line(&mut line) {
            Ok(0) => {
                self.conn = None;
                Err(NodeError::Io("connection closed by worker".into()))
            }
            Ok(_) => Json::parse(line.trim())
                .map_err(|e| NodeError::Remote(format!("bad response: {e}"))),
            Err(e) => {
                self.conn = None;
                Err(NodeError::Io(format!("read: {e}")))
            }
        }
    }

    /// Send a request, then sever the connection *without reading the
    /// reply* — the injected
    /// [`mdmp_faults::NodeFaultKind::DropConnection`] fault. The worker
    /// may still execute the tile; the coordinator re-dispatches it, and
    /// the merge's first-delivery-wins rule keeps the output exact.
    pub fn send_and_drop(&mut self, request: &Json) -> NodeError {
        if let Ok(conn) = self.connect() {
            let _ = writeln!(conn.writer, "{request}").and_then(|_| conn.writer.flush());
        }
        self.conn = None;
        NodeError::Io("injected connection drop".into())
    }

    /// Execute one tile on the node: a `tile_exec` request for exactly
    /// one tile of `job`, decoded to its result planes.
    pub fn exec_tile(&mut self, job: &Json, tile: usize) -> Result<DecodedTile, NodeError> {
        let request = tile_exec_request(job, tile);
        let reply = self.request(&request)?;
        if reply.get("ok").and_then(Json::as_bool) != Some(true) {
            let message = reply
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("worker error without message");
            return Err(NodeError::Remote(message.to_string()));
        }
        let tiles = reply
            .get("tiles")
            .and_then(Json::as_arr)
            .ok_or_else(|| NodeError::Remote("reply missing 'tiles'".into()))?;
        let entry = tiles
            .first()
            .ok_or_else(|| NodeError::Remote("reply carries no tile".into()))?;
        let decoded = decode_tile(entry).map_err(NodeError::Remote)?;
        if decoded.tile != tile {
            return Err(NodeError::Remote(format!(
                "asked for tile {tile}, worker answered tile {}",
                decoded.tile
            )));
        }
        Ok(decoded)
    }
}

/// The wire form of a one-tile lease execution request.
pub fn tile_exec_request(job: &Json, tile: usize) -> Json {
    Json::obj(vec![
        ("op", Json::str("tile_exec")),
        ("job", job.clone()),
        ("tiles", Json::Arr(vec![Json::num(tile as f64)])),
    ])
}

/// Decode one entry of a `tile_exec` reply's `tiles` array.
pub fn decode_tile(entry: &Json) -> Result<DecodedTile, String> {
    let field = |name: &str| -> Result<u64, String> {
        entry
            .get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("tile entry missing numeric '{name}'"))
    };
    let tile = field("tile")? as usize;
    let col0 = field("col0")? as usize;
    let n_query = field("n_query")? as usize;
    let dims = field("dims")? as usize;
    let len = n_query
        .checked_mul(dims)
        .ok_or_else(|| "tile plane size overflows".to_string())?;
    let p_hex = entry
        .get("p_hex")
        .and_then(Json::as_str)
        .ok_or_else(|| "tile entry missing 'p_hex'".to_string())?;
    let p = decode_plane_hex(p_hex, len)?;
    let raw_i = entry
        .get("i")
        .and_then(Json::as_arr)
        .ok_or_else(|| "tile entry missing 'i'".to_string())?;
    if raw_i.len() != len {
        return Err(format!(
            "index plane has {} elements, expected {len}",
            raw_i.len()
        ));
    }
    let mut i = Vec::with_capacity(len);
    for v in raw_i {
        let x = v
            .as_f64()
            .ok_or_else(|| "index plane entries must be numbers".to_string())?;
        i.push(x as i64);
    }
    let device_seconds = entry
        .get("device_seconds")
        .and_then(Json::as_f64)
        .ok_or_else(|| "tile entry missing 'device_seconds'".to_string())?;
    let precalc_hit = entry
        .get("precalc_hit")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    Ok(DecodedTile {
        tile,
        col0,
        n_query,
        dims,
        p,
        i,
        device_seconds,
        precalc_hit,
    })
}

//! One node's client half of the tile-lease protocol: a persistent TCP
//! connection to an `mdmp-service` worker, reconnected on demand. Each
//! connection negotiates the binary frame upgrade (DESIGN.md §15) and
//! falls back to JSON lines against old workers or under
//! `MDMP_WIRE=json`; tile result planes decode bit-exactly from either
//! transport — binary chunks, or the hex `f64`/`i64` encodings.

use mdmp_service::{
    decode_index_plane_hex, decode_plane_hex, wire_preference, Chunk, Json, Message, WireConn,
    WireError, WirePreference,
};
use std::time::Duration;

/// One decoded tile result from a worker: the tile's identity in the
/// global tiling, its partial profile planes (k-major, bit-exact), and
/// the modelled device seconds it cost the node.
#[derive(Debug, Clone)]
pub struct DecodedTile {
    /// Tile index in the job's global tiling.
    pub tile: usize,
    /// First query column the tile covers.
    pub col0: usize,
    /// Query columns the tile covers.
    pub n_query: usize,
    /// Profile dimensions.
    pub dims: usize,
    /// Value plane, k-major (`dims * n_query` elements).
    pub p: Vec<f64>,
    /// Index plane, k-major.
    pub i: Vec<i64>,
    /// Modelled device seconds the tile cost the node.
    pub device_seconds: f64,
    /// Whether the worker served the precalculation from its cache.
    pub precalc_hit: bool,
}

/// Why a node request failed, as the coordinator's health ledger sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeError {
    /// Transport failure: connect refused, connection dropped, read
    /// timeout (deadline overrun), or an injected cluster fault.
    Io(String),
    /// The worker answered, but with an error (bad spec, exhausted tile
    /// retries) or a malformed reply.
    Remote(String),
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeError::Io(e) => write!(f, "io: {e}"),
            NodeError::Remote(e) => write!(f, "remote: {e}"),
        }
    }
}

/// A lazily (re)connected client for one worker node.
pub struct NodeClient {
    addr: String,
    timeout: Duration,
    prefer: WirePreference,
    conn: Option<WireConn>,
    killed: bool,
    bytes_sent: u64,
    bytes_received: u64,
    binary_wire: bool,
}

impl NodeClient {
    /// A client for the worker at `addr`; `timeout` bounds each reply
    /// read (a node that overruns it is treated as failed). The wire
    /// transport follows the process-wide [`wire_preference`].
    pub fn new(addr: &str, timeout: Duration) -> NodeClient {
        NodeClient::with_wire(addr, timeout, wire_preference())
    }

    /// A client with an explicit transport preference.
    pub fn with_wire(addr: &str, timeout: Duration, prefer: WirePreference) -> NodeClient {
        NodeClient {
            addr: addr.to_string(),
            timeout,
            prefer,
            conn: None,
            killed: false,
            bytes_sent: 0,
            bytes_received: 0,
            binary_wire: false,
        }
    }

    /// The node's address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether the most recent connection negotiated the binary frame
    /// upgrade.
    pub fn is_binary(&self) -> bool {
        self.binary_wire
    }

    /// Bytes this client has written to the node across all connections.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent + self.conn.as_ref().map_or(0, WireConn::bytes_sent)
    }

    /// Bytes this client has read from the node across all connections.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received + self.conn.as_ref().map_or(0, WireConn::bytes_received)
    }

    /// Mark the node as killed: the connection is severed and every later
    /// request fails as a crashed machine's would (injected
    /// [`mdmp_faults::NodeFaultKind::Kill`]).
    pub fn kill(&mut self) {
        self.killed = true;
        self.drop_conn();
    }

    /// Whether the node was killed.
    pub fn is_killed(&self) -> bool {
        self.killed
    }

    /// Sever the connection (it reconnects on the next request).
    pub fn disconnect(&mut self) {
        self.drop_conn();
    }

    /// Sever the connection, folding its byte counters into the client's
    /// running totals first so accounting survives reconnects.
    fn drop_conn(&mut self) {
        if let Some(conn) = self.conn.take() {
            self.bytes_sent += conn.bytes_sent();
            self.bytes_received += conn.bytes_received();
        }
    }

    fn connect(&mut self) -> Result<&mut WireConn, NodeError> {
        if self.killed {
            return Err(NodeError::Io(format!("node {} is killed", self.addr)));
        }
        if self.conn.is_none() {
            let conn = WireConn::connect(&self.addr, Some(self.timeout), self.prefer)
                .map_err(|e| NodeError::Io(format!("connect {}: {e}", self.addr)))?;
            self.binary_wire = conn.is_binary();
            self.conn = Some(conn);
        }
        match self.conn.as_mut() {
            Some(conn) => Ok(conn),
            None => Err(NodeError::Io("connection unavailable".into())),
        }
    }

    /// Send one request and read one response on the negotiated
    /// transport. Any transport error severs the connection so the next
    /// request reconnects.
    pub fn request_msg(&mut self, request: &Message) -> Result<Message, NodeError> {
        let conn = self.connect()?;
        match conn.request(request) {
            Ok(reply) => Ok(reply),
            Err(WireError::Io(e)) => {
                self.drop_conn();
                Err(NodeError::Io(format!("request: {e}")))
            }
            Err(e @ (WireError::Desync(_) | WireError::Corrupt(_))) => {
                // The response stream is unreliable; resynchronize by
                // reconnecting.
                self.drop_conn();
                Err(NodeError::Remote(format!("bad response: {e}")))
            }
        }
    }

    /// Send one chunkless request and read one response.
    pub fn request(&mut self, request: &Json) -> Result<Json, NodeError> {
        self.request_msg(&Message::json(request.clone()))
            .map(|reply| reply.json)
    }

    /// Send a request, then sever the connection *without reading the
    /// reply* — the injected
    /// [`mdmp_faults::NodeFaultKind::DropConnection`] fault. The worker
    /// may still execute the tile; the coordinator re-dispatches it, and
    /// the merge's first-delivery-wins rule keeps the output exact.
    pub fn send_and_drop(&mut self, request: &Json) -> NodeError {
        if let Ok(conn) = self.connect() {
            let _ = conn.send(&Message::json(request.clone()));
        }
        self.drop_conn();
        NodeError::Io("injected connection drop".into())
    }

    /// Execute one tile on the node: a `tile_exec` request for exactly
    /// one tile of `job`, decoded to its result planes.
    pub fn exec_tile(&mut self, job: &Json, tile: usize) -> Result<DecodedTile, NodeError> {
        let request = Message::json(tile_exec_request(job, tile));
        let reply = self.request_msg(&request)?;
        if reply.json.get("ok").and_then(Json::as_bool) != Some(true) {
            let message = reply
                .json
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("worker error without message");
            return Err(NodeError::Remote(message.to_string()));
        }
        let mut chunks: Vec<Option<Chunk>> = reply.chunks.into_iter().map(Some).collect();
        let tiles = reply
            .json
            .get("tiles")
            .and_then(Json::as_arr)
            .ok_or_else(|| NodeError::Remote("reply missing 'tiles'".into()))?;
        let entry = tiles
            .first()
            .ok_or_else(|| NodeError::Remote("reply carries no tile".into()))?;
        let decoded = decode_tile(entry, &mut chunks).map_err(NodeError::Remote)?;
        if decoded.tile != tile {
            return Err(NodeError::Remote(format!(
                "asked for tile {tile}, worker answered tile {}",
                decoded.tile
            )));
        }
        Ok(decoded)
    }
}

/// The wire form of a one-tile lease execution request.
pub fn tile_exec_request(job: &Json, tile: usize) -> Json {
    Json::obj(vec![
        ("op", Json::str("tile_exec")),
        ("job", job.clone()),
        ("tiles", Json::Arr(vec![Json::num(tile as f64)])),
    ])
}

fn take_chunk(
    entry: &Json,
    chunks: &mut [Option<Chunk>],
    field: &str,
) -> Result<Option<Chunk>, String> {
    let Some(index) = entry.get(field).and_then(Json::as_u64) else {
        return Ok(None);
    };
    let slot = chunks
        .get_mut(index as usize)
        .ok_or_else(|| format!("'{field}' points past the frame's chunks"))?;
    slot.take()
        .map(Some)
        .ok_or_else(|| format!("'{field}' reuses an already-consumed chunk"))
}

/// Decode one entry of a `tile_exec` reply's `tiles` array. `chunks` are
/// the reply frame's chunk slots (empty on a JSON-lines reply); each
/// `p_chunk`/`i_chunk` reference consumes its slot. The JSON forms —
/// `p_hex`/`i_hex`, and the pre-PR9 `i` number array — decode from the
/// entry itself.
pub fn decode_tile(entry: &Json, chunks: &mut [Option<Chunk>]) -> Result<DecodedTile, String> {
    let field = |name: &str| -> Result<u64, String> {
        entry
            .get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("tile entry missing numeric '{name}'"))
    };
    let tile = field("tile")? as usize;
    let col0 = field("col0")? as usize;
    let n_query = field("n_query")? as usize;
    let dims = field("dims")? as usize;
    let len = n_query
        .checked_mul(dims)
        .ok_or_else(|| "tile plane size overflows".to_string())?;
    let p = match take_chunk(entry, chunks, "p_chunk")? {
        Some(Chunk::F64(plane)) => plane,
        Some(Chunk::I64(_)) => return Err("'p_chunk' names an index chunk".into()),
        None => {
            let p_hex = entry
                .get("p_hex")
                .and_then(Json::as_str)
                .ok_or_else(|| "tile entry missing 'p_chunk'/'p_hex'".to_string())?;
            decode_plane_hex(p_hex, len)?
        }
    };
    if p.len() != len {
        return Err(format!(
            "value plane has {} elements, expected {len}",
            p.len()
        ));
    }
    let i = match take_chunk(entry, chunks, "i_chunk")? {
        Some(Chunk::I64(plane)) => plane,
        Some(Chunk::F64(_)) => return Err("'i_chunk' names a float chunk".into()),
        None => {
            if let Some(i_hex) = entry.get("i_hex").and_then(Json::as_str) {
                decode_index_plane_hex(i_hex, len)?
            } else {
                // Pre-PR9 workers ship the index plane as a JSON number
                // array; keep decoding it so mixed-version clusters work.
                let raw_i = entry
                    .get("i")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| "tile entry missing 'i_chunk'/'i_hex'/'i'".to_string())?;
                let mut i = Vec::with_capacity(raw_i.len());
                for v in raw_i {
                    let x = v
                        .as_f64()
                        .ok_or_else(|| "index plane entries must be numbers".to_string())?;
                    i.push(x as i64);
                }
                i
            }
        }
    };
    if i.len() != len {
        return Err(format!(
            "index plane has {} elements, expected {len}",
            i.len()
        ));
    }
    let device_seconds = entry
        .get("device_seconds")
        .and_then(Json::as_f64)
        .ok_or_else(|| "tile entry missing 'device_seconds'".to_string())?;
    let precalc_hit = entry
        .get("precalc_hit")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    Ok(DecodedTile {
        tile,
        col0,
        n_query,
        dims,
        p,
        i,
        device_seconds,
        precalc_hit,
    })
}

//! `mdmp-cluster` — a distributed tile-sharding coordinator over
//! `mdmp-service` worker nodes.
//!
//! The paper's tile driver partitions the matrix-profile computation into
//! independent, restart-bounded tiles — exactly the unit of work a cluster
//! scheduler wants. This crate shards one job's tiles across N worker
//! nodes over the existing JSON-lines TCP protocol (`tile_exec` requests),
//! steals tiles from straggler nodes when a faster node drains its shard,
//! quarantines nodes that fail (connection drop, deadline overrun,
//! repeated tile errors) via the same health-ledger machinery that
//! quarantines simulated devices, re-dispatches their leased tiles, and
//! merges results deterministically through a cluster-scope reorder
//! buffer — so the cluster's output is **bit-identical** to a single-node
//! run in every precision mode (DESIGN.md §12).
//!
//! Unlike `mdmp_core::multinode`, which *models* an MPI-style cluster on
//! simulated interconnects, this crate coordinates real worker processes
//! over real sockets; only per-tile device seconds come from the cost
//! model.
//!
//! ## Quick start
//!
//! Start workers (any number, any mix of machines):
//!
//! ```text
//! mdmp-cluster serve --addr 127.0.0.1:7701
//! mdmp-cluster serve --addr 127.0.0.1:7702
//! ```
//!
//! Submit a job across them:
//!
//! ```text
//! mdmp-cluster submit --nodes 127.0.0.1:7701,127.0.0.1:7702 \
//!     --n 4096 --d 4 --m 64 --mode fp16 --tiles 16
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cli;
pub mod client;
pub mod coordinator;
pub mod lease;
pub(crate) mod sync;

pub use client::{decode_tile, tile_exec_request, DecodedTile, NodeClient, NodeError};
pub use coordinator::{
    job_spec_json, run_cluster, ClusterConfig, ClusterError, ClusterRun, NodeReport, ReorderMerge,
};
pub use lease::{Completion, LeaseTable, NextLease};

//! The cluster coordinator: shard a job's tiles across worker nodes,
//! steal from stragglers, survive node loss, and merge bit-identically.
//!
//! One thread per node drives the node's persistent connection through
//! the claim loop of [`crate::lease::LeaseTable`]; completed tiles flow
//! over a channel into the in-order [`ReorderMerge`] buffer (the PR2
//! reorder buffer, lifted to cluster scope). Node failure — connection
//! drop, read-deadline overrun, repeated tile errors — feeds the
//! cluster-scope health ledger ([`mdmp_gpu_sim::DeviceHealth`], reused
//! verbatim: a dead node *is* a quarantined device at cluster scope); a
//! node that exhausts its failure budget is quarantined, its leased tiles
//! re-dispatched to survivors, and its unclaimed shard drained into the
//! re-dispatch queue.
//!
//! **Determinism argument.** Remote tiles are computed by
//! [`mdmp_core::run_tile_subset`] over the job's *global* tiling, so a
//! tile's planes are bit-identical wherever it runs; planes cross the
//! wire as `f64` bit patterns, so transport is exact; and the reorder
//! buffer merges tiles strictly in ascending tile index, exactly once
//! (first delivery wins, duplicates dropped), which is the single-node
//! driver's merge order. Schedules, steals, duplicates and re-dispatches
//! therefore cannot change a single output bit (DESIGN.md §12).

use crate::client::{tile_exec_request, DecodedTile, NodeClient};
use crate::lease::{Completion, LeaseTable, NextLease};
use crate::sync;
use mdmp_core::{job_tile_count, MatrixProfile};
use mdmp_faults::{ClusterFaultPlan, NodeFaultKind};
use mdmp_gpu_sim::DeviceHealth;
use mdmp_service::{wire_preference, JobInput, JobSpec, Json, WirePreference};
use std::collections::BTreeMap;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Coordinator tunables.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Worker node addresses (`host:port`, each an `mdmp-service`).
    pub nodes: Vec<String>,
    /// Consecutive failures before a node is quarantined.
    pub quarantine_threshold: u32,
    /// Reply deadline per tile request; an overrun counts as a node
    /// failure.
    pub request_timeout: Duration,
    /// Whether a drained node may speculatively duplicate-lease in-flight
    /// tiles of stragglers (first result wins; duplicates are dropped).
    pub speculate: bool,
    /// Injected cluster-scope faults (tests and chaos benches).
    pub fault_plan: ClusterFaultPlan,
    /// Wire transport preference for node connections: negotiate the
    /// binary frame upgrade (DESIGN.md §15), or force JSON lines.
    pub wire: WirePreference,
}

impl ClusterConfig {
    /// A coordinator over `nodes` with default resilience settings.
    pub fn new(nodes: Vec<String>) -> ClusterConfig {
        ClusterConfig {
            nodes,
            quarantine_threshold: 3,
            request_timeout: Duration::from_secs(60),
            speculate: true,
            fault_plan: ClusterFaultPlan::new(),
            wire: wire_preference(),
        }
    }
}

/// Per-node outcome of a cluster run.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// The node's address.
    pub addr: String,
    /// Tiles whose result this node delivered first (merged).
    pub tiles_merged: u64,
    /// Tile results this node delivered, including dropped duplicates.
    pub tiles_executed: u64,
    /// Tiles this node stole from other shards.
    pub tiles_stolen: u64,
    /// Modelled device seconds of the tiles this node executed.
    pub device_seconds: f64,
    /// Failed requests (transport, deadline, worker errors).
    pub failures: u64,
    /// Tiles whose precalculation the worker served from cache.
    pub precalc_hits: u64,
    /// Tiles whose precalculation the worker computed.
    pub precalc_misses: u64,
    /// Whether the node was quarantined before the job finished.
    pub quarantined: bool,
    /// Bytes the coordinator wrote to this node, across reconnects.
    pub bytes_sent: u64,
    /// Bytes the coordinator read from this node, across reconnects.
    pub bytes_received: u64,
    /// Whether the node's last connection negotiated the binary frame
    /// upgrade.
    pub binary_wire: bool,
}

impl NodeReport {
    fn new(addr: &str) -> NodeReport {
        NodeReport {
            addr: addr.to_string(),
            tiles_merged: 0,
            tiles_executed: 0,
            tiles_stolen: 0,
            device_seconds: 0.0,
            failures: 0,
            precalc_hits: 0,
            precalc_misses: 0,
            quarantined: false,
            bytes_sent: 0,
            bytes_received: 0,
            binary_wire: false,
        }
    }

    fn absorb_wire(&mut self, client: &NodeClient) {
        self.bytes_sent = client.bytes_sent();
        self.bytes_received = client.bytes_received();
        self.binary_wire = client.is_binary();
    }
}

/// The outcome of a cluster run.
#[derive(Debug)]
pub struct ClusterRun {
    /// The merged matrix profile — bit-identical to a single-node run.
    pub profile: MatrixProfile,
    /// Tiles in the job's global tiling.
    pub tiles_total: usize,
    /// Tiles stolen across shards.
    pub steals: u64,
    /// Tiles re-dispatched after a failed lease.
    pub redispatches: u64,
    /// Duplicate results dropped by the first-delivery-wins rule.
    pub duplicates_dropped: u64,
    /// Per-node reports, in node order.
    pub nodes: Vec<NodeReport>,
    /// Wall-clock seconds of the whole cluster run.
    pub wall_seconds: f64,
}

impl ClusterRun {
    /// Total precalc cache hits across nodes.
    pub fn precalc_hits(&self) -> u64 {
        self.nodes.iter().map(|n| n.precalc_hits).sum()
    }

    /// Total precalc cache misses across nodes.
    pub fn precalc_misses(&self) -> u64 {
        self.nodes.iter().map(|n| n.precalc_misses).sum()
    }

    /// Total bytes the coordinator wrote to nodes.
    pub fn wire_bytes_sent(&self) -> u64 {
        self.nodes.iter().map(|n| n.bytes_sent).sum()
    }

    /// Total bytes the coordinator read from nodes.
    pub fn wire_bytes_received(&self) -> u64 {
        self.nodes.iter().map(|n| n.bytes_received).sum()
    }

    /// Nodes whose last connection used the binary frame transport.
    pub fn binary_wire_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.binary_wire).count()
    }

    /// Indices of nodes that were quarantined.
    pub fn quarantined_nodes(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.quarantined)
            .map(|(i, _)| i)
            .collect()
    }

    /// The cluster's makespan on the modelled device clock: the busiest
    /// node's accumulated device seconds. Tile costs come from the same
    /// cost model wherever a tile runs, so this is schedule-deterministic
    /// up to the tile→node assignment.
    pub fn modelled_makespan_seconds(&self) -> f64 {
        self.nodes
            .iter()
            .map(|n| n.device_seconds)
            .fold(0.0, f64::max)
    }

    /// Modelled throughput: tiles per modelled makespan second.
    pub fn modelled_tiles_per_second(&self) -> f64 {
        let makespan = self.modelled_makespan_seconds();
        if makespan > 0.0 {
            self.tiles_total as f64 / makespan
        } else {
            0.0
        }
    }

    /// Prometheus-style per-node metrics for the run.
    pub fn metrics_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# TYPE mdmp_cluster_tiles_total gauge\n");
        out.push_str(&format!("mdmp_cluster_tiles_total {}\n", self.tiles_total));
        for (name, value) in [
            ("mdmp_cluster_steals_total", self.steals),
            ("mdmp_cluster_redispatches_total", self.redispatches),
            (
                "mdmp_cluster_duplicates_dropped_total",
                self.duplicates_dropped,
            ),
        ] {
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        type NodeSeries = fn(&NodeReport) -> String;
        let series: [(&str, NodeSeries); 8] = [
            ("mdmp_cluster_node_tiles_merged_total", |n| {
                n.tiles_merged.to_string()
            }),
            ("mdmp_cluster_node_tiles_stolen_total", |n| {
                n.tiles_stolen.to_string()
            }),
            ("mdmp_cluster_node_failures_total", |n| {
                n.failures.to_string()
            }),
            ("mdmp_cluster_node_device_seconds_total", |n| {
                n.device_seconds.to_string()
            }),
            ("mdmp_cluster_node_quarantined", |n| {
                u8::from(n.quarantined).to_string()
            }),
            ("mdmp_cluster_node_wire_bytes_sent_total", |n| {
                n.bytes_sent.to_string()
            }),
            ("mdmp_cluster_node_wire_bytes_received_total", |n| {
                n.bytes_received.to_string()
            }),
            ("mdmp_cluster_node_wire_binary", |n| {
                u8::from(n.binary_wire).to_string()
            }),
        ];
        for (name, value_of) in series {
            out.push_str(&format!("# TYPE {name} counter\n"));
            for (node, report) in self.nodes.iter().enumerate() {
                out.push_str(&format!(
                    "{name}{{node=\"{node}\",addr=\"{}\"}} {}\n",
                    report.addr,
                    value_of(report)
                ));
            }
        }
        out
    }
}

/// Typed cluster failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The job cannot be distributed (bad config, in-memory input, …).
    BadSpec(String),
    /// Every node died before the job finished; the listed count of tiles
    /// was merged out of the expected total.
    AllNodesDown {
        /// Tiles merged before the cluster died.
        merged: usize,
        /// Tiles the job needed.
        expected: usize,
    },
    /// A worker answered with planes that do not fit the job (protocol
    /// violation — never a transient fault).
    Protocol(String),
    /// The coordinator could not spawn its node threads.
    Spawn(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::BadSpec(e) => write!(f, "bad cluster job: {e}"),
            ClusterError::AllNodesDown { merged, expected } => {
                write!(f, "all nodes down with {merged}/{expected} tiles merged")
            }
            ClusterError::Protocol(e) => write!(f, "protocol violation: {e}"),
            ClusterError::Spawn(e) => write!(f, "spawn: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// The wire form of a distributable job spec, as `mdmp-service`'s
/// `parse_job_spec` reads it. In-memory inputs cannot be shipped.
pub fn job_spec_json(spec: &JobSpec) -> Result<Json, String> {
    let input = match &spec.input {
        JobInput::Synthetic {
            n,
            d,
            pattern,
            noise,
            seed,
        } => Json::obj(vec![
            ("kind", Json::str("synthetic")),
            ("n", Json::num(*n as f64)),
            ("d", Json::num(*d as f64)),
            ("pattern", Json::num(*pattern as f64)),
            ("noise", Json::num(*noise)),
            ("seed", Json::num(*seed as f64)),
        ]),
        JobInput::Csv { reference, query } => {
            let mut pairs = vec![
                ("kind", Json::str("csv")),
                ("reference", Json::str(reference.to_string_lossy())),
            ];
            if let Some(query) = query {
                pairs.push(("query", Json::str(query.to_string_lossy())));
            }
            Json::obj(pairs)
        }
        JobInput::InMemory { .. } => {
            return Err("in-memory jobs cannot be distributed across nodes".into())
        }
    };
    let mut pairs = vec![
        ("input", input),
        ("m", Json::num(spec.m as f64)),
        ("mode", Json::str(spec.mode.label())),
        ("tiles", Json::num(spec.tiles as f64)),
        ("gpus", Json::num(spec.gpus as f64)),
        ("priority", Json::str(spec.priority.label())),
        ("tile_retries", Json::num(spec.tile_retries as f64)),
    ];
    if let Some(plan) = &spec.fault_plan {
        pairs.push(("fault_plan", Json::str(plan.to_string())));
    }
    if let Some(fused) = spec.fused_rows {
        pairs.push(("fused_rows", Json::Bool(fused)));
    }
    if let Some(k) = spec.tc_chunk_k {
        pairs.push(("tc_chunk_k", Json::num(k as f64)));
    }
    if let Some(ms) = spec.tile_deadline_ms {
        pairs.push(("tile_deadline_ms", Json::num(ms as f64)));
    }
    Ok(Json::obj(pairs))
}

/// The cluster-scope reorder buffer: park out-of-order completions in a
/// `BTreeMap` and merge strictly in ascending tile index, each tile
/// exactly once — the single-node driver's merge order, so the output is
/// bit-identical regardless of completion order, duplicates included.
#[derive(Debug)]
pub struct ReorderMerge {
    profile: MatrixProfile,
    pending: BTreeMap<usize, DecodedTile>,
    cursor: usize,
    total: usize,
    duplicates: u64,
}

impl ReorderMerge {
    /// A buffer for a job with `total` tiles over an `n_query × dims`
    /// profile.
    pub fn new(n_query: usize, dims: usize, total: usize) -> ReorderMerge {
        ReorderMerge {
            profile: MatrixProfile::new_unset(n_query, dims),
            pending: BTreeMap::new(),
            cursor: 0,
            total,
            duplicates: 0,
        }
    }

    /// Offer a completed tile. Returns `Ok(true)` if it was accepted (and
    /// possibly unblocked in-order merging), `Ok(false)` for a duplicate
    /// (dropped), and `Err` for planes that cannot belong to the job.
    pub fn offer(&mut self, tile: DecodedTile) -> Result<bool, String> {
        if tile.tile >= self.total {
            return Err(format!(
                "tile {} out of range for a {}-tile job",
                tile.tile, self.total
            ));
        }
        if tile.dims != self.profile.dims() {
            return Err(format!(
                "tile {} has {} dims, job has {}",
                tile.tile,
                tile.dims,
                self.profile.dims()
            ));
        }
        if tile.col0 + tile.n_query > self.profile.n_query() {
            return Err(format!(
                "tile {} covers columns {}..{}, job has {}",
                tile.tile,
                tile.col0,
                tile.col0 + tile.n_query,
                self.profile.n_query()
            ));
        }
        let expect = tile.n_query * tile.dims;
        if tile.p.len() != expect || tile.i.len() != expect {
            return Err(format!(
                "tile {} planes have {}/{} elements, expected {expect}",
                tile.tile,
                tile.p.len(),
                tile.i.len()
            ));
        }
        if tile.tile < self.cursor || self.pending.contains_key(&tile.tile) {
            self.duplicates += 1;
            return Ok(false);
        }
        self.pending.insert(tile.tile, tile);
        while let Some(next) = self.pending.remove(&self.cursor) {
            let partial = MatrixProfile::from_raw(next.p, next.i, next.n_query, next.dims);
            self.profile.merge_min_columns(&partial, next.col0);
            self.cursor += 1;
        }
        Ok(true)
    }

    /// Tiles merged in order so far.
    pub fn merged(&self) -> usize {
        self.cursor
    }

    /// Duplicates this buffer itself dropped.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Whether every tile has been merged.
    pub fn is_complete(&self) -> bool {
        self.cursor == self.total
    }

    /// The merged profile; fails while tiles are missing.
    pub fn finish(self) -> Result<MatrixProfile, String> {
        if self.cursor == self.total {
            Ok(self.profile)
        } else {
            Err(format!(
                "merge incomplete: {}/{} tiles",
                self.cursor, self.total
            ))
        }
    }
}

struct Shared {
    table: Mutex<LeaseTable>,
    work: Condvar,
    health: DeviceHealth,
    job: Json,
    plan: ClusterFaultPlan,
    speculate: bool,
    threshold: u32,
    timeout: Duration,
    wire: WirePreference,
}

/// How long a node with nothing claimable waits before re-checking the
/// table (completions and re-dispatches also wake it via the condvar).
const WAIT_SLICE: Duration = Duration::from_millis(25);

/// Run `spec` across the cluster and return the merged profile —
/// bit-identical to a single-node run of the same job — plus the run's
/// scheduling and resilience counters.
pub fn run_cluster(spec: &JobSpec, cluster: &ClusterConfig) -> Result<ClusterRun, ClusterError> {
    if cluster.nodes.is_empty() {
        return Err(ClusterError::BadSpec(
            "cluster needs at least one node".into(),
        ));
    }
    let job = job_spec_json(spec).map_err(ClusterError::BadSpec)?;
    let (reference, query) = spec.materialize().map_err(ClusterError::BadSpec)?;
    let cfg = spec.config();
    let n_r = reference.n_segments(cfg.m);
    let n_q = query.n_segments(cfg.m);
    let total = job_tile_count(n_r, n_q, &cfg).map_err(|e| ClusterError::BadSpec(e.to_string()))?;
    let dims = reference.dims();
    let n_nodes = cluster.nodes.len();
    let started = Instant::now();

    let shared = Arc::new(Shared {
        table: Mutex::new(LeaseTable::new(total, n_nodes)),
        work: Condvar::new(),
        health: DeviceHealth::new(n_nodes, cluster.quarantine_threshold.max(1)),
        job,
        plan: cluster.fault_plan.clone(),
        speculate: cluster.speculate,
        threshold: cluster.quarantine_threshold.max(1),
        timeout: cluster.request_timeout,
        wire: cluster.wire,
    });

    let (tx, rx) = mpsc::channel::<DecodedTile>();
    let mut handles = Vec::with_capacity(n_nodes);
    for (node, addr) in cluster.nodes.iter().enumerate() {
        let shared = Arc::clone(&shared);
        let tx = tx.clone();
        let addr = addr.clone();
        let handle = std::thread::Builder::new()
            .name(format!("mdmp-cluster-node-{node}"))
            .spawn(move || node_loop(&shared, node, &addr, &tx))
            .map_err(|e| ClusterError::Spawn(e.to_string()))?;
        handles.push(handle);
    }
    drop(tx);

    let mut merge = ReorderMerge::new(n_q, dims, total);
    let mut fatal: Option<ClusterError> = None;
    while !merge.is_complete() {
        match rx.recv() {
            Ok(tile) => {
                if let Err(e) = merge.offer(tile) {
                    fatal = Some(ClusterError::Protocol(e));
                    break;
                }
            }
            // Every node thread exited (channel closed) with tiles
            // missing.
            Err(_) => break,
        }
    }

    let mut nodes = Vec::with_capacity(n_nodes);
    for (node, handle) in handles.into_iter().enumerate() {
        match handle.join() {
            Ok(report) => nodes.push(report),
            Err(_) => {
                let mut report = NodeReport::new(&cluster.nodes[node]);
                report.quarantined = true;
                nodes.push(report);
            }
        }
    }
    if let Some(e) = fatal {
        return Err(e);
    }
    if !merge.is_complete() {
        return Err(ClusterError::AllNodesDown {
            merged: merge.merged(),
            expected: total,
        });
    }
    let profile = merge.finish().map_err(ClusterError::Protocol)?;
    let table = sync::lock(&shared.table);
    Ok(ClusterRun {
        profile,
        tiles_total: total,
        steals: table.steals(),
        redispatches: table.redispatches(),
        duplicates_dropped: table.duplicates_dropped(),
        nodes,
        wall_seconds: started.elapsed().as_secs_f64(),
    })
}

/// One node thread: claim tiles, execute them over the node's connection,
/// and feed merged completions to the coordinator until the job finishes
/// or the node is quarantined.
fn node_loop(
    shared: &Shared,
    node: usize,
    addr: &str,
    tx: &mpsc::Sender<DecodedTile>,
) -> NodeReport {
    let mut report = NodeReport::new(addr);
    let mut client = NodeClient::with_wire(addr, shared.timeout, shared.wire);
    let mut seq = 0u64;
    let mut consecutive = 0u32;
    loop {
        // Claim the next tile (or wait for in-flight work to resolve).
        let tile = {
            let mut claimed = None;
            let mut table = sync::lock(&shared.table);
            loop {
                match table.next_for(node, shared.speculate) {
                    NextLease::Finished => break,
                    NextLease::Tile { tile, stolen, .. } => {
                        if stolen {
                            report.tiles_stolen += 1;
                        }
                        claimed = Some(tile);
                        break;
                    }
                    NextLease::Wait => {
                        let (guard, _) = sync::wait_timeout(&shared.work, table, WAIT_SLICE);
                        table = guard;
                    }
                }
            }
            match claimed {
                Some(tile) => tile,
                None => {
                    report.absorb_wire(&client);
                    return report;
                }
            }
        };

        // Execute it, injecting any scheduled cluster fault for this
        // (node, request) coordinate.
        let fault = shared.plan.node_fault(node, seq);
        seq += 1;
        let result = match fault {
            Some(NodeFaultKind::Kill) => {
                client.kill();
                Err(crate::client::NodeError::Io("injected node kill".into()))
            }
            Some(NodeFaultKind::DropConnection) => {
                Err(client.send_and_drop(&tile_exec_request(&shared.job, tile)))
            }
            None => client.exec_tile(&shared.job, tile),
        };

        match result {
            Ok(decoded) => {
                consecutive = 0;
                report.tiles_executed += 1;
                report.device_seconds += decoded.device_seconds;
                if decoded.precalc_hit {
                    report.precalc_hits += 1;
                } else {
                    report.precalc_misses += 1;
                }
                let completion = {
                    let mut table = sync::lock(&shared.table);
                    table.complete(node, tile)
                };
                shared.work.notify_all();
                if completion == Completion::Merged {
                    report.tiles_merged += 1;
                    // A closed channel means the coordinator stopped
                    // consuming (fatal protocol error) — nothing left to
                    // do with the result.
                    let _ = tx.send(decoded);
                }
            }
            Err(_) => {
                report.failures += 1;
                consecutive += 1;
                let _ = shared.health.record_failure(node);
                let dead = client.is_killed()
                    || consecutive >= shared.threshold
                    || shared.health.is_quarantined(node);
                {
                    let mut table = sync::lock(&shared.table);
                    table.fail(node, tile);
                    if dead {
                        table.quarantine(node);
                    }
                }
                shared.work.notify_all();
                if dead {
                    report.quarantined = true;
                    report.absorb_wire(&client);
                    return report;
                }
                // Transient failure: reconnect on the next request.
                client.disconnect();
            }
        }
    }
}

//! `mdmp` — the command-line interface of the reduced-precision
//! multi-dimensional matrix profile reproduction.
//!
//! Run `mdmp` without arguments for usage.

mod args;
mod commands;
mod profile_io;
mod serve;

use args::ParsedArgs;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "--help" || raw[0] == "help" {
        print!("{}", commands::usage());
        std::process::exit(if raw.is_empty() { 2 } else { 0 });
    }
    // `cluster` takes its own subcommand ("cluster serve …"), which the
    // ParsedArgs grammar rejects as a positional — dispatch it before
    // parsing.
    if raw[0] == "cluster" {
        if let Err(e) = mdmp_cluster::cli::run(&raw[1..]) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        return;
    }
    let parsed = match ParsedArgs::parse(&raw) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::usage());
            std::process::exit(2);
        }
    };
    let result = match parsed.command.as_str() {
        "compute" => commands::compute(&parsed),
        "motifs" => commands::mine(&parsed, false),
        "discords" => commands::mine(&parsed, true),
        "generate" => commands::generate(&parsed),
        "estimate" => commands::estimate(&parsed),
        "serve" => serve::serve(&parsed),
        "submit" => serve::submit(&parsed),
        "status" => serve::status(&parsed),
        "stream" => serve::stream(&parsed),
        "info" => commands::info(),
        other => Err(format!(
            "unknown command '{other}'\n\n{}",
            commands::usage()
        )),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

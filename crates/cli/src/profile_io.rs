//! CSV persistence for computed matrix profiles.
//!
//! Format: a comment header, then one row per query segment:
//! `j, P_1, …, P_d, I_1, …, I_d` — profile values for the 1- to
//! d-dimensional profiles followed by the matching reference indices.

use mdmp_core::MatrixProfile;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Write a profile to CSV.
pub fn write_profile(path: &Path, profile: &MatrixProfile) -> io::Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    let d = profile.dims();
    writeln!(
        w,
        "# mdmp matrix profile: n_query={} dims={}",
        profile.n_query(),
        d
    )?;
    let mut header = vec!["j".to_string()];
    header.extend((0..d).map(|k| format!("P_{}", k + 1)));
    header.extend((0..d).map(|k| format!("I_{}", k + 1)));
    writeln!(w, "{}", header.join(","))?;
    for j in 0..profile.n_query() {
        let mut row = vec![j.to_string()];
        row.extend((0..d).map(|k| format!("{}", profile.value(j, k))));
        row.extend((0..d).map(|k| format!("{}", profile.index(j, k))));
        writeln!(w, "{}", row.join(","))?;
    }
    w.flush()
}

/// Read a profile written by [`write_profile`].
pub fn read_profile(path: &Path) -> io::Result<MatrixProfile> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut rows: Vec<(Vec<f64>, Vec<i64>)> = Vec::new();
    let mut d = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('j') {
            continue;
        }
        let cells: Vec<&str> = t.split(',').collect();
        let bad = |msg: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {msg}", lineno + 1),
            )
        };
        if cells.len() < 3 || cells.len().is_multiple_of(2) {
            return Err(bad("expected columns j, P_1.., I_1.."));
        }
        let row_d = (cells.len() - 1) / 2;
        if d == 0 {
            d = row_d;
        } else if d != row_d {
            return Err(bad("inconsistent column count"));
        }
        let mut p = Vec::with_capacity(d);
        for c in &cells[1..1 + d] {
            p.push(c.parse::<f64>().map_err(|e| bad(&e.to_string()))?);
        }
        let mut i = Vec::with_capacity(d);
        for c in &cells[1 + d..] {
            i.push(c.parse::<i64>().map_err(|e| bad(&e.to_string()))?);
        }
        rows.push((p, i));
    }
    if rows.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "no profile rows in file",
        ));
    }
    let n = rows.len();
    let mut p_plane = vec![0.0; n * d];
    let mut i_plane = vec![0i64; n * d];
    for (j, (p, i)) in rows.into_iter().enumerate() {
        for k in 0..d {
            p_plane[k * n + j] = p[k];
            i_plane[k * n + j] = i[k];
        }
    }
    Ok(MatrixProfile::from_raw(p_plane, i_plane, n, d))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mdmp_cli_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn profile_round_trip() {
        let profile = MatrixProfile::from_raw(
            vec![1.5, 2.5, 3.5, 0.25, 0.5, 0.75],
            vec![10, 11, 12, 20, 21, 22],
            3,
            2,
        );
        let path = tmp("roundtrip.csv");
        write_profile(&path, &profile).unwrap();
        let back = read_profile(&path).unwrap();
        assert_eq!(back, profile);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn round_trip_preserves_infinity_and_unset() {
        let profile = MatrixProfile::new_unset(2, 1);
        let path = tmp("unset.csv");
        write_profile(&path, &profile).unwrap();
        let back = read_profile(&path).unwrap();
        assert!(back.value(0, 0).is_infinite());
        assert_eq!(back.index(1, 0), -1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_ragged_and_empty() {
        let path = tmp("ragged.csv");
        std::fs::write(&path, "0,1.0,2.0,3,4\n1,1.0,3\n").unwrap();
        assert!(read_profile(&path).is_err());
        std::fs::write(&path, "# nothing\n").unwrap();
        assert!(read_profile(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}

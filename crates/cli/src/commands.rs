//! Subcommand implementations. Each takes parsed arguments and returns a
//! user-facing error string on failure; printing goes to stdout.

use crate::args::ParsedArgs;
use crate::profile_io;
use mdmp_core::{estimate_run, run_with_mode, top_discords, top_motifs, MdmpConfig, TileSchedule};
use mdmp_data::io as data_io;
use mdmp_data::synthetic::{generate_pair, Pattern, SyntheticConfig};
use mdmp_faults::FaultPlan;
use mdmp_gpu_sim::{DeviceSpec, GpuSystem, UtilizationReport};
use mdmp_precision::PrecisionMode;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

type CmdResult = Result<(), String>;

fn err<E: std::fmt::Display>(e: E) -> String {
    e.to_string()
}

pub fn device_spec(name: &str) -> Result<DeviceSpec, String> {
    match name.to_ascii_lowercase().as_str() {
        "a100" => Ok(DeviceSpec::a100()),
        "v100" => Ok(DeviceSpec::v100()),
        "cpu" | "skylake" => Ok(DeviceSpec::skylake_16c()),
        other => Err(format!("unknown device '{other}' (a100, v100, cpu)")),
    }
}

fn schedule(name: &str) -> Result<TileSchedule, String> {
    match name.to_ascii_lowercase().as_str() {
        "rr" | "round-robin" | "roundrobin" => Ok(TileSchedule::RoundRobin),
        "balanced" => Ok(TileSchedule::Balanced),
        other => Err(format!("unknown schedule '{other}' (rr, balanced)")),
    }
}

/// `--tc-chunk-k 4|8|16`: MMA accumulator chunk width for the tensor-core
/// modes. Omitted = auto (env `MDMP_TC_CHUNK_K`, else the input format's
/// hardware shape). Validated here so a bad value fails at the flag, not
/// mid-run.
pub fn tc_chunk_k_arg(args: &ParsedArgs) -> Result<Option<usize>, String> {
    let k: Option<usize> = args.get("tc-chunk-k").map_err(err)?;
    if let Some(k) = k {
        if !mdmp_gpu_sim::MMA_CHUNK_SIZES.contains(&k) {
            return Err(format!(
                "--tc-chunk-k must be one of {:?}, got {k}",
                mdmp_gpu_sim::MMA_CHUNK_SIZES
            ));
        }
    }
    Ok(k)
}

/// `--fused-rows on|off|auto`: `auto` (the default) defers to the env
/// variable `MDMP_FUSED_ROWS`, else the fused pipeline is on.
pub fn fused_rows_arg(args: &ParsedArgs) -> Result<Option<bool>, String> {
    match args
        .get_or::<String>("fused-rows", "auto".into())
        .map_err(err)?
        .to_ascii_lowercase()
        .as_str()
    {
        "auto" => Ok(None),
        "on" | "true" | "1" => Ok(Some(true)),
        "off" | "false" | "0" => Ok(Some(false)),
        other => Err(format!("unknown --fused-rows '{other}' (on, off, auto)")),
    }
}

fn build_config(args: &ParsedArgs, m: usize) -> Result<MdmpConfig, String> {
    let mode: PrecisionMode = args
        .get_or::<String>("mode", "fp64".into())
        .map_err(err)?
        .parse()
        .map_err(err)?;
    let tiles: usize = args.get_or("tiles", 1).map_err(err)?;
    // 0 = auto: env MDMP_HOST_WORKERS if set, else one worker per GPU.
    let host_workers: usize = args.get_or("host-workers", 0).map_err(err)?;
    let sched = schedule(
        &args
            .get_or::<String>("schedule", "rr".into())
            .map_err(err)?,
    )?;
    let fault_plan: Option<String> = args.get("fault-plan").map_err(err)?;
    let tile_retries: u32 = args.get_or("tile-retries", 2).map_err(err)?;
    let tile_timeout_ms: Option<u64> = args.get("tile-timeout-ms").map_err(err)?;
    let fused_rows = fused_rows_arg(args)?;
    let tc_chunk_k = tc_chunk_k_arg(args)?;
    let mut cfg = MdmpConfig::new(m, mode)
        .with_tiles(tiles)
        .with_schedule(sched)
        .with_host_workers(host_workers)
        .with_tile_retries(tile_retries)
        .with_fused_rows(fused_rows)
        .with_tc_chunk_k(tc_chunk_k)
        .with_tile_deadline(tile_timeout_ms.map(Duration::from_millis));
    if let Some(spec) = fault_plan {
        let plan: FaultPlan = spec.parse().map_err(err)?;
        cfg = cfg.with_fault_plan(Some(Arc::new(plan)));
    }
    if args.flag("self-join") {
        cfg = cfg.self_join();
    }
    if args.flag("no-clamp") {
        cfg.clamp = false;
    }
    Ok(cfg)
}

/// `mdmp compute` — compute a matrix profile from CSV series.
pub fn compute(args: &ParsedArgs) -> CmdResult {
    let reference_path: PathBuf = args.require("reference").map_err(err)?;
    let query_path: Option<PathBuf> = args.get("query").map_err(err)?;
    let m: usize = args.require("m").map_err(err)?;
    let output: PathBuf = args.require("output").map_err(err)?;
    let gpus: usize = args.get_or("gpus", 1).map_err(err)?;
    let device = device_spec(
        &args
            .get_or::<String>("device", "a100".into())
            .map_err(err)?,
    )?;
    let report = args.flag("report");
    let anytime: Option<f64> = args.get("anytime").map_err(err)?;
    let seed: u64 = args.get_or("seed", 42).map_err(err)?;
    let repair = args.flag("repair-dropouts");
    let mut cfg = build_config(args, m)?;
    args.reject_unknown().map_err(err)?;

    let mut reference = data_io::read_csv(&reference_path).map_err(err)?;
    let mut query = match &query_path {
        Some(p) => data_io::read_csv(p).map_err(err)?,
        None => {
            // Self-join by default when no query is given.
            if cfg.exclusion_zone.is_none() {
                cfg = cfg.self_join();
            }
            reference.clone()
        }
    };
    if repair {
        let fixed = reference.interpolate_non_finite() + query.interpolate_non_finite();
        if fixed > 0 {
            println!("repaired {fixed} non-finite samples by interpolation");
        }
    }
    if let Some(fraction) = anytime {
        if !(0.0..=1.0).contains(&fraction) {
            return Err("--anytime must be in [0, 1]".into());
        }
        println!(
            "anytime (SCRIMP-style, FP64): {} vs {} (m={m}, fraction {fraction})",
            reference, query
        );
        let (profile, progress) =
            mdmp_core::scrimp_anytime(&reference, &query, m, fraction, cfg.exclusion_zone, seed);
        profile_io::write_profile(&output, &profile).map_err(err)?;
        println!(
            "wrote {} after {}/{} diagonals ({} cells)",
            output.display(),
            progress.diagonals_done,
            progress.diagonals_total,
            progress.cells_done
        );
        return Ok(());
    }
    println!(
        "computing: {} vs {} (m={m}, mode={}, {} tiles, {gpus}x {})",
        reference, query, cfg.mode, cfg.n_tiles, device.name
    );
    let mut system = GpuSystem::homogeneous(device.clone(), gpus);
    let run = run_with_mode(&reference, &query, &cfg, &mut system).map_err(err)?;
    profile_io::write_profile(&output, &run.profile).map_err(err)?;
    println!(
        "wrote {} ({} query segments x {} dims)",
        output.display(),
        run.profile.n_query(),
        run.profile.dims()
    );
    println!(
        "modeled GPU time {:.4} s (merge {:.4} s); host wall {:.2} s \
         ({} host workers, {} buffer reuses)",
        run.modeled_seconds,
        run.merge_seconds,
        run.wall_seconds,
        run.host_workers,
        run.buffer_pool_reuses
    );
    if run.faults_injected > 0 || run.tile_retries > 0 || !run.quarantined_devices.is_empty() {
        println!(
            "resilience: {} faults injected, {} tile retries, {} validation failures, \
             quarantined devices {:?}",
            run.faults_injected,
            run.tile_retries,
            run.plane_validation_failures,
            run.quarantined_devices
        );
    }
    if report {
        let util = UtilizationReport::from_ledger(&device, &run.ledger);
        print!("{util}");
    }
    Ok(())
}

/// `mdmp motifs` / `mdmp discords` — mine a stored profile.
pub fn mine(args: &ParsedArgs, discords: bool) -> CmdResult {
    let profile_path: PathBuf = args.require("profile").map_err(err)?;
    let m: usize = args.require("m").map_err(err)?;
    let top: usize = args.get_or("top", 5).map_err(err)?;
    let profile = profile_io::read_profile(&profile_path).map_err(err)?;
    let k: usize = args
        .get_or("k", profile.dims())
        .map_err(err)?
        .clamp(1, profile.dims())
        - 1;
    args.reject_unknown().map_err(err)?;

    if discords {
        println!("top {top} discords of the {}-dimensional profile:", k + 1);
        for d in top_discords(&profile, k, m, top) {
            println!(
                "  query segment {:>6}  nn-distance {:.4}",
                d.query_pos, d.distance
            );
        }
    } else {
        println!("top {top} motifs of the {}-dimensional profile:", k + 1);
        for mo in top_motifs(&profile, k, m, top) {
            println!(
                "  query {:>6} <-> reference {:>6}  distance {:.4}",
                mo.query_pos, mo.match_pos, mo.distance
            );
        }
    }
    Ok(())
}

/// `mdmp generate` — write a synthetic dataset as CSV.
pub fn generate(args: &ParsedArgs) -> CmdResult {
    let kind: String = args.get_or("kind", "synthetic".into()).map_err(err)?;
    let output: PathBuf = args.require("output").map_err(err)?;
    let seed: u64 = args.get_or("seed", 42).map_err(err)?;
    match kind.as_str() {
        "synthetic" => {
            let n: usize = args.get_or("n", 4096).map_err(err)?;
            let d: usize = args.get_or("d", 8).map_err(err)?;
            let m: usize = args.get_or("m", 64).map_err(err)?;
            let pattern_idx: usize = args.get_or("pattern", 0).map_err(err)?;
            args.reject_unknown().map_err(err)?;
            if pattern_idx >= Pattern::ALL.len() {
                return Err(format!("--pattern must be 0..{}", Pattern::ALL.len() - 1));
            }
            let pair = generate_pair(&SyntheticConfig {
                n_subsequences: n,
                dims: d,
                m,
                pattern: Pattern::ALL[pattern_idx],
                embeddings: 4,
                noise: 0.3,
                pattern_amplitude: 1.0,
                seed,
            });
            data_io::write_csv(&output, &pair.reference).map_err(err)?;
            let query_path = sibling(&output, "_query");
            data_io::write_csv(&query_path, &pair.query).map_err(err)?;
            println!(
                "wrote {} and {} (pattern {} embedded at ref {:?} / query {:?})",
                output.display(),
                query_path.display(),
                Pattern::ALL[pattern_idx].label(),
                pair.reference_locs,
                pair.query_locs
            );
        }
        "genome" => {
            let len: usize = args.get_or("len", 4096).map_err(err)?;
            args.reject_unknown().map_err(err)?;
            let ds = mdmp_data::genome::generate(&mdmp_data::genome::GenomeConfig {
                seed,
                ..mdmp_data::genome::GenomeConfig::default_case_study(len)
            });
            data_io::write_csv(&output, &ds.series).map_err(err)?;
            println!("wrote {} ({} channels)", output.display(), ds.series.dims());
        }
        "turbine" => {
            let n: usize = args.get_or("n", 4096).map_err(err)?;
            let m: usize = args.get_or("m", 256).map_err(err)?;
            args.reject_unknown().map_err(err)?;
            let ts = mdmp_data::turbine::generate_series(
                mdmp_data::turbine::SeriesKind::Both,
                &mdmp_data::turbine::TurbineConfig::default_case_study(n, m, 1, seed),
            );
            data_io::write_csv(&output, &ts.series).map_err(err)?;
            println!("wrote {} (startups at {:?})", output.display(), ts.events);
        }
        other => {
            return Err(format!(
                "unknown kind '{other}' (synthetic, genome, turbine)"
            ))
        }
    }
    Ok(())
}

fn sibling(path: &std::path::Path, suffix: &str) -> PathBuf {
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("out");
    let ext = path.extension().and_then(|s| s.to_str()).unwrap_or("csv");
    path.with_file_name(format!("{stem}{suffix}.{ext}"))
}

/// `mdmp estimate` — modeled runtime at arbitrary scale, no computation.
pub fn estimate(args: &ParsedArgs) -> CmdResult {
    let n: usize = args.require("n").map_err(err)?;
    let d: usize = args.get_or("d", 64).map_err(err)?;
    let m: usize = args.get_or("m", 64).map_err(err)?;
    let gpus: usize = args.get_or("gpus", 1).map_err(err)?;
    let device = device_spec(
        &args
            .get_or::<String>("device", "a100".into())
            .map_err(err)?,
    )?;
    let cfg = build_config(args, m)?;
    args.reject_unknown().map_err(err)?;

    let mut system = GpuSystem::homogeneous(device.clone(), gpus);
    let est = estimate_run(n, n, d, &cfg, &mut system).map_err(err)?;
    println!(
        "modeled: n={n}, d={d}, m={m}, mode={}, {} tiles on {gpus}x {}",
        cfg.mode, cfg.n_tiles, device.name
    );
    println!("  total          {:>10.3} s", est.modeled_seconds);
    println!("  merge (CPU)    {:>10.3} s", est.merge_seconds);
    for (class, entry) in est.ledger.rows() {
        println!("  {:<14} {:>10.3} s", class.label(), entry.seconds);
    }
    Ok(())
}

/// `mdmp info` — supported devices and precision modes.
pub fn info() -> CmdResult {
    println!("devices:");
    for spec in [
        DeviceSpec::a100(),
        DeviceSpec::v100(),
        DeviceSpec::skylake_16c(),
    ] {
        println!(
            "  {:<18} {:>3} SMs, {:>5.1} GB, {:>7.0} GB/s, {:>4.1} TFLOP/s FP64",
            spec.name,
            spec.sms,
            spec.mem_bytes as f64 / 1e9,
            spec.mem_bandwidth / 1e9,
            spec.fp64_flops / 1e12,
        );
    }
    println!("\nprecision modes:");
    for mode in PrecisionMode::ALL {
        println!(
            "  {:<9} precalc {:<9} main loop {:<9} {}",
            mode.label(),
            mode.precalc_format().to_string(),
            mode.main_format().to_string(),
            if mode.compensated_precalc() {
                "(Kahan-compensated precalculation)"
            } else {
                ""
            }
        );
    }
    Ok(())
}

/// Usage text.
pub fn usage() -> String {
    "mdmp — multi-dimensional matrix profile with reduced precision (IPDPS'22 reproduction)

USAGE: mdmp <command> [options]

COMMANDS:
  compute   --reference <csv> [--query <csv>] --m <len> --output <csv>
            [--mode fp64|fp32|fp16|mixed|fp16c|bf16|tf32|e4m3|e5m2
                    |fp16-tc|bf16-tc|tf32-tc]
            [--tiles N] [--gpus N] [--device a100|v100|cpu]
            [--schedule rr|balanced] [--self-join] [--no-clamp] [--report]
            [--anytime FRACTION] [--seed S] [--repair-dropouts]
            [--host-workers N]  (0 = auto: $MDMP_HOST_WORKERS, else #gpus)
            [--fused-rows on|off|auto]  (auto: $MDMP_FUSED_ROWS, else on)
            [--tc-chunk-k 4|8|16]  (TC modes; auto: $MDMP_TC_CHUNK_K)
            [--fault-plan SPEC] [--tile-retries N] [--tile-timeout-ms MS]
            fault-plan SPEC: comma-separated, e.g. \"seed=7,kernel@0,stall@3:40,
            nan@5,flip@2:52,pkernel=0.01,attempts=1,budget=4,drop\"
  motifs    --profile <csv> --m <len> [--top N] [--k DIMS]
  discords  --profile <csv> --m <len> [--top N] [--k DIMS]
  generate  --kind synthetic|genome|turbine --output <csv>
            [--n N] [--d D] [--m M] [--pattern 0..7] [--seed S] [--len L]
  estimate  --n <segments> [--d D] [--m M] [--mode ..] [--tiles N]
            [--gpus N] [--device a100|v100|cpu] [--schedule rr|balanced]
  serve     [--addr HOST:PORT] [--workers N] [--devices N] [--queue N]
            [--device a100|v100|cpu] [--cache-mb MB] [--host-workers N]
  submit    [--addr HOST:PORT] --m <len> [--mode ..] [--tiles N] [--gpus N]
            [--priority high|normal|low] [--retries N] [--wait] [--timeout S]
            [--fault-plan SPEC] [--tile-retries N] [--tile-timeout-ms MS]
            [--deadline-ms MS] [--fused-rows on|off|auto] [--tc-chunk-k 4|8|16]
            with --reference <csv> [--query <csv>] (server-side paths), or
            synthetic: [--n N] [--d D] [--pattern 0..7] [--noise X] [--seed S]
  status    [--addr HOST:PORT] [--id JOB] [--metrics] [--shutdown | --abort]
  stream    [--addr HOST:PORT] --reference <csv> [--query <csv>] --m <len>
            [--mode ..] [--initial N] [--chunk N] — open a streaming
            session on the query head, append the tail chunk by chunk
            (incremental delta tiles server-side), then close
  cluster   serve | submit — shard a job's tiles across worker nodes
            (run `mdmp cluster` for the full option list)
  info      list devices and precision modes
"
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::ParsedArgs;

    fn parsed(parts: &[&str]) -> ParsedArgs {
        let raw: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        ParsedArgs::parse(&raw).unwrap()
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mdmp_cmd_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn generate_then_compute_then_mine_pipeline() {
        let data = tmp("pipeline.csv");
        let gen = parsed(&[
            "generate",
            "--kind",
            "synthetic",
            "--n",
            "256",
            "--d",
            "2",
            "--m",
            "16",
            "--output",
            data.to_str().unwrap(),
        ]);
        generate(&gen).unwrap();
        let query = tmp("pipeline_query.csv");
        assert!(query.exists());

        let profile_path = tmp("pipeline_profile.csv");
        let comp = parsed(&[
            "compute",
            "--reference",
            data.to_str().unwrap(),
            "--query",
            query.to_str().unwrap(),
            "--m",
            "16",
            "--mode",
            "fp32",
            "--tiles",
            "4",
            "--output",
            profile_path.to_str().unwrap(),
        ]);
        compute(&comp).unwrap();
        let profile = profile_io::read_profile(&profile_path).unwrap();
        assert_eq!(profile.n_query(), 256);
        assert_eq!(profile.dims(), 2);

        let motif_args = parsed(&[
            "motifs",
            "--profile",
            profile_path.to_str().unwrap(),
            "--m",
            "16",
            "--top",
            "3",
        ]);
        mine(&motif_args, false).unwrap();
        let discord_args = parsed(&[
            "discords",
            "--profile",
            profile_path.to_str().unwrap(),
            "--m",
            "16",
        ]);
        mine(&discord_args, true).unwrap();

        for p in [&data, &query, &profile_path] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn compute_without_query_is_a_self_join() {
        let data = tmp("selfjoin.csv");
        let gen = parsed(&[
            "generate",
            "--kind",
            "synthetic",
            "--n",
            "128",
            "--d",
            "1",
            "--m",
            "8",
            "--output",
            data.to_str().unwrap(),
        ]);
        generate(&gen).unwrap();
        let out = tmp("selfjoin_profile.csv");
        let comp = parsed(&[
            "compute",
            "--reference",
            data.to_str().unwrap(),
            "--m",
            "8",
            "--output",
            out.to_str().unwrap(),
        ]);
        compute(&comp).unwrap();
        let profile = profile_io::read_profile(&out).unwrap();
        // Self-join with exclusion: no index equals its own position.
        for j in 0..profile.n_query() {
            assert_ne!(profile.index(j, 0), j as i64);
        }
        std::fs::remove_file(&data).ok();
        std::fs::remove_file(&out).ok();
        std::fs::remove_file(tmp("selfjoin_query.csv")).ok();
    }

    #[test]
    fn anytime_compute_writes_a_partial_profile() {
        let data = tmp("anytime.csv");
        let gen = parsed(&[
            "generate",
            "--kind",
            "synthetic",
            "--n",
            "200",
            "--d",
            "2",
            "--m",
            "16",
            "--output",
            data.to_str().unwrap(),
        ]);
        generate(&gen).unwrap();
        let out = tmp("anytime_profile.csv");
        let comp = parsed(&[
            "compute",
            "--reference",
            data.to_str().unwrap(),
            "--m",
            "16",
            "--anytime",
            "0.5",
            "--output",
            out.to_str().unwrap(),
        ]);
        compute(&comp).unwrap();
        let profile = profile_io::read_profile(&out).unwrap();
        assert_eq!(profile.n_query(), 200);
        // Partial coverage: some entries may be unset, many are set.
        assert!(profile.unset_fraction() < 0.9);
        std::fs::remove_file(&data).ok();
        std::fs::remove_file(&out).ok();
        std::fs::remove_file(tmp("anytime_query.csv")).ok();
    }

    #[test]
    fn anytime_seed_controls_the_diagonal_order() {
        let data = tmp("seeded.csv");
        let gen = parsed(&[
            "generate",
            "--kind",
            "synthetic",
            "--n",
            "200",
            "--d",
            "1",
            "--m",
            "16",
            "--output",
            data.to_str().unwrap(),
        ]);
        generate(&gen).unwrap();
        let run = |seed: &str, tag: &str| {
            let out = tmp(&format!("seeded_profile_{tag}.csv"));
            let comp = parsed(&[
                "compute",
                "--reference",
                data.to_str().unwrap(),
                "--m",
                "16",
                "--anytime",
                "0.3",
                "--seed",
                seed,
                "--output",
                out.to_str().unwrap(),
            ]);
            compute(&comp).unwrap();
            let text = std::fs::read_to_string(&out).unwrap();
            std::fs::remove_file(&out).ok();
            text
        };
        let a1 = run("7", "a1");
        let a2 = run("7", "a2");
        let b = run("8", "b");
        assert_eq!(a1, a2, "same seed must repeat the same partial profile");
        assert_ne!(a1, b, "different seeds must sample different diagonals");
        std::fs::remove_file(&data).ok();
        std::fs::remove_file(tmp("seeded_query.csv")).ok();
    }

    #[test]
    fn repair_dropouts_flag_fixes_nans() {
        let data = tmp("dropouts.csv");
        std::fs::write(
            &data,
            (0..64)
                .map(|t| {
                    if t == 20 {
                        "NaN".to_string()
                    } else {
                        format!("{}", (t as f64 * 0.7).sin())
                    }
                })
                .collect::<Vec<_>>()
                .join("\n"),
        )
        .unwrap();
        let out = tmp("dropouts_profile.csv");
        let comp = parsed(&[
            "compute",
            "--reference",
            data.to_str().unwrap(),
            "--m",
            "8",
            "--repair-dropouts",
            "--output",
            out.to_str().unwrap(),
        ]);
        compute(&comp).unwrap();
        let profile = profile_io::read_profile(&out).unwrap();
        assert!(
            profile.unset_fraction() < 0.05,
            "repair should fix the NaN window"
        );
        std::fs::remove_file(&data).ok();
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn fault_plan_flag_retries_to_success_or_fails_typed() {
        let data = tmp("faulty.csv");
        let gen = parsed(&[
            "generate",
            "--kind",
            "synthetic",
            "--n",
            "128",
            "--d",
            "1",
            "--m",
            "8",
            "--output",
            data.to_str().unwrap(),
        ]);
        generate(&gen).unwrap();
        let out = tmp("faulty_profile.csv");
        // A kernel fault on tile 0 with the default retry budget: the run
        // must recover and write a profile.
        let comp = parsed(&[
            "compute",
            "--reference",
            data.to_str().unwrap(),
            "--m",
            "8",
            "--tiles",
            "2",
            "--fault-plan",
            "seed=7,kernel@0",
            "--output",
            out.to_str().unwrap(),
        ]);
        compute(&comp).unwrap();
        assert!(profile_io::read_profile(&out).is_ok());
        // The same fault on every attempt with retries disabled must fail.
        let comp = parsed(&[
            "compute",
            "--reference",
            data.to_str().unwrap(),
            "--m",
            "8",
            "--tiles",
            "2",
            "--fault-plan",
            "seed=7,kernel@0,attempts=all",
            "--tile-retries",
            "0",
            "--output",
            out.to_str().unwrap(),
        ]);
        let msg = compute(&comp).unwrap_err();
        assert!(msg.contains("tile 0"), "typed tile error, got: {msg}");
        // A malformed plan is rejected at parse time.
        let comp = parsed(&[
            "compute",
            "--reference",
            data.to_str().unwrap(),
            "--m",
            "8",
            "--fault-plan",
            "explode@0",
            "--output",
            out.to_str().unwrap(),
        ]);
        assert!(compute(&comp).is_err());
        std::fs::remove_file(&data).ok();
        std::fs::remove_file(&out).ok();
        std::fs::remove_file(tmp("faulty_query.csv")).ok();
    }

    #[test]
    fn estimate_and_info_run() {
        let est = parsed(&["estimate", "--n", "4096", "--d", "16", "--mode", "fp16"]);
        estimate(&est).unwrap();
        info().unwrap();
    }

    #[test]
    fn bad_inputs_produce_errors_not_panics() {
        assert!(device_spec("tpu").is_err());
        assert!(schedule("magic").is_err());
        let comp = parsed(&[
            "compute",
            "--reference",
            "/nonexistent.csv",
            "--m",
            "8",
            "--output",
            "/tmp/x.csv",
        ]);
        assert!(compute(&comp).is_err());
        let gen = parsed(&["generate", "--kind", "nope", "--output", "/tmp/x.csv"]);
        assert!(generate(&gen).is_err());
        let gen2 = parsed(&[
            "generate",
            "--kind",
            "synthetic",
            "--pattern",
            "99",
            "--output",
            "/tmp/x.csv",
        ]);
        assert!(generate(&gen2).is_err());
    }

    #[test]
    fn fused_rows_flag_parses_and_rejects() {
        for value in ["on", "off", "auto"] {
            let est = parsed(&["estimate", "--n", "512", "--fused-rows", value]);
            estimate(&est).unwrap();
        }
        let bad = parsed(&["estimate", "--n", "512", "--fused-rows", "sometimes"]);
        assert!(estimate(&bad).unwrap_err().contains("--fused-rows"));
    }

    #[test]
    fn tc_chunk_flag_parses_and_rejects() {
        for value in ["4", "8", "16"] {
            let est = parsed(&[
                "estimate",
                "--n",
                "512",
                "--mode",
                "fp16-tc",
                "--tc-chunk-k",
                value,
            ]);
            estimate(&est).unwrap();
        }
        let bad = parsed(&["estimate", "--n", "512", "--tc-chunk-k", "5"]);
        assert!(estimate(&bad).unwrap_err().contains("--tc-chunk-k"));
    }

    #[test]
    fn unknown_option_is_rejected() {
        let est = parsed(&["estimate", "--n", "1024", "--bogus", "3"]);
        assert!(estimate(&est).is_err());
    }
}

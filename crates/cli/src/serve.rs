//! The `serve`, `submit`, `status` and `stream` subcommands: run the job
//! service behind a TCP JSON-lines endpoint and talk to it as a client.

use crate::args::ParsedArgs;
use crate::commands::device_spec;
use mdmp_data::io as data_io;
use mdmp_data::MultiDimSeries;
use mdmp_service::{
    request, serve as serve_tcp, wire_preference, Chunk, Json, Message, Service, ServiceConfig,
    WireConn,
};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

type CmdResult = Result<(), String>;

fn err<E: std::fmt::Display>(e: E) -> String {
    e.to_string()
}

/// `mdmp serve` — run the job service until a `shutdown` request arrives.
pub fn serve(args: &ParsedArgs) -> CmdResult {
    let addr: String = args.get_or("addr", "127.0.0.1:7661".into()).map_err(err)?;
    let workers: usize = args.get_or("workers", 2).map_err(err)?;
    let queue: usize = args.get_or("queue", 64).map_err(err)?;
    let devices: usize = args.get_or("devices", 2).map_err(err)?;
    let cache_mb: u64 = args.get_or("cache-mb", 256).map_err(err)?;
    // Host worker threads per run; 0 = auto (env, else leased GPU count).
    let host_workers: usize = args.get_or("host-workers", 0).map_err(err)?;
    let device = device_spec(
        &args
            .get_or::<String>("device", "a100".into())
            .map_err(err)?,
    )?;
    args.reject_unknown().map_err(err)?;
    if workers == 0 || devices == 0 || queue == 0 {
        return Err("--workers, --devices and --queue must be positive".into());
    }

    let service = Service::start(ServiceConfig {
        workers,
        queue_capacity: queue,
        device: device.clone(),
        devices,
        cache_bytes: cache_mb << 20,
        host_workers,
        ..ServiceConfig::default()
    });
    let mut server = serve_tcp(Arc::clone(&service), &addr).map_err(err)?;
    println!(
        "mdmp-service listening on {} ({workers} workers, {devices}x {}, queue {queue}, cache {cache_mb} MiB)",
        server.local_addr(),
        device.name
    );
    println!(
        "stop with: mdmp status --addr {} --shutdown",
        server.local_addr()
    );
    // Wait until a shutdown request has been fully served — the service
    // drained (or aborted) AND the response line reached the client.
    // Exiting on `is_shutting_down()` alone would kill the process
    // mid-drain, severing the client connection before its reply.
    while !server.shutdown_served() {
        std::thread::sleep(Duration::from_millis(50));
    }
    server.stop();
    println!("mdmp-service stopped");
    Ok(())
}

/// Build the wire-form job object from `submit` arguments.
fn job_json(args: &ParsedArgs) -> Result<Json, String> {
    let m: usize = args.require("m").map_err(err)?;
    let mode: String = args.get_or("mode", "fp64".into()).map_err(err)?;
    let tiles: usize = args.get_or("tiles", 1).map_err(err)?;
    let gpus: usize = args.get_or("gpus", 1).map_err(err)?;
    let priority: String = args.get_or("priority", "normal".into()).map_err(err)?;
    let retries: u64 = args.get_or("retries", 0).map_err(err)?;
    let reference: Option<String> = args.get("reference").map_err(err)?;
    let input = match reference {
        Some(reference) => {
            let mut pairs = vec![
                ("kind", Json::str("csv")),
                ("reference", Json::str(reference)),
            ];
            if let Some(query) = args.get::<String>("query").map_err(err)? {
                pairs.push(("query", Json::str(query)));
            }
            Json::obj(pairs)
        }
        None => {
            let n: usize = args.get_or("n", 4096).map_err(err)?;
            let d: usize = args.get_or("d", 1).map_err(err)?;
            let pattern: usize = args.get_or("pattern", 0).map_err(err)?;
            let noise: f64 = args.get_or("noise", 0.3).map_err(err)?;
            let seed: u64 = args.get_or("seed", 42).map_err(err)?;
            Json::obj(vec![
                ("kind", Json::str("synthetic")),
                ("n", Json::num(n as f64)),
                ("d", Json::num(d as f64)),
                ("pattern", Json::num(pattern as f64)),
                ("noise", Json::num(noise)),
                ("seed", Json::num(seed as f64)),
            ])
        }
    };
    let mut pairs = vec![
        ("input", input),
        ("m", Json::num(m as f64)),
        ("mode", Json::str(mode)),
        ("tiles", Json::num(tiles as f64)),
        ("gpus", Json::num(gpus as f64)),
        ("priority", Json::str(priority)),
        ("max_retries", Json::num(retries as f64)),
    ];
    if let Some(plan) = args.get::<String>("fault-plan").map_err(err)? {
        pairs.push(("fault_plan", Json::str(plan)));
    }
    if let Some(tile_retries) = args.get::<u64>("tile-retries").map_err(err)? {
        pairs.push(("tile_retries", Json::num(tile_retries as f64)));
    }
    if let Some(ms) = args.get::<u64>("tile-timeout-ms").map_err(err)? {
        pairs.push(("tile_deadline_ms", Json::num(ms as f64)));
    }
    if let Some(fused) = crate::commands::fused_rows_arg(args)? {
        pairs.push(("fused_rows", Json::Bool(fused)));
    }
    if let Some(k) = crate::commands::tc_chunk_k_arg(args)? {
        pairs.push(("tc_chunk_k", Json::num(k as f64)));
    }
    if let Some(ms) = args.get::<u64>("deadline-ms").map_err(err)? {
        pairs.push(("deadline_ms", Json::num(ms as f64)));
    }
    Ok(Json::obj(pairs))
}

fn check_ok(response: &Json) -> Result<(), String> {
    if response.get("ok").and_then(Json::as_bool) == Some(true) {
        Ok(())
    } else {
        Err(response
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("request failed")
            .to_string())
    }
}

/// `mdmp submit` — send a job to a running service.
pub fn submit(args: &ParsedArgs) -> CmdResult {
    let addr: String = args.get_or("addr", "127.0.0.1:7661".into()).map_err(err)?;
    let wait = args.flag("wait");
    let timeout: f64 = args.get_or("timeout", 300.0).map_err(err)?;
    let job = job_json(args)?;
    args.reject_unknown().map_err(err)?;

    let response = request(
        &addr,
        &Json::obj(vec![("op", Json::str("submit")), ("job", job)]),
    )
    .map_err(err)?;
    check_ok(&response)?;
    let id = response
        .get("id")
        .and_then(Json::as_u64)
        .ok_or("malformed response: no id")?;
    println!("submitted job {id}");
    if !wait {
        return Ok(());
    }
    let response = request(
        &addr,
        &Json::obj(vec![
            ("op", Json::str("wait")),
            ("id", Json::num(id as f64)),
            ("timeout_seconds", Json::num(timeout)),
        ]),
    )
    .map_err(err)?;
    check_ok(&response)?;
    let job = response.get("job").ok_or("malformed response: no job")?;
    print_job(job);
    match job.get("state").and_then(Json::as_str) {
        Some("done") => Ok(()),
        Some(state) => Err(format!("job {id} ended as {state}")),
        None => Err("malformed response: no state".into()),
    }
}

fn print_job(job: &Json) {
    let field = |k: &str| job.get(k).map(|v| v.to_string()).unwrap_or_default();
    println!(
        "job {} [{}] priority {} attempts {} queued {}s",
        field("id"),
        job.get("state").and_then(Json::as_str).unwrap_or("?"),
        job.get("priority").and_then(Json::as_str).unwrap_or("?"),
        field("attempts"),
        field("queue_seconds"),
    );
    if let Some(error) = job.get("error").and_then(Json::as_str) {
        println!("  error: {error}");
    }
    if let Some(outcome) = job.get("outcome") {
        let of = |k: &str| outcome.get(k).map(|v| v.to_string()).unwrap_or_default();
        println!(
            "  profile {} segments x {} dims; modeled {} s, wall {} s",
            of("n_query"),
            of("dims"),
            of("modeled_seconds"),
            of("wall_seconds"),
        );
        println!(
            "  precalc cache: {} hits, {} misses",
            of("precalc_hits"),
            of("precalc_misses")
        );
        if let Some(motifs) = outcome.get("motifs").and_then(Json::as_arr) {
            for motif in motifs {
                let mf = |k: &str| motif.get(k).map(|v| v.to_string()).unwrap_or_default();
                println!(
                    "  motif dim {}: query {} <-> reference {} distance {}",
                    mf("dim"),
                    mf("query"),
                    mf("reference"),
                    mf("distance")
                );
            }
        }
    }
}

/// A window of a series as the JSON wire form: one array of samples per
/// dimension.
fn samples_json(series: &MultiDimSeries, start: usize, len: usize) -> Json {
    Json::Arr(
        (0..series.dims())
            .map(|k| {
                Json::Arr(
                    series.dim(k)[start..start + len]
                        .iter()
                        .map(|&v| Json::num(v))
                        .collect(),
                )
            })
            .collect(),
    )
}

/// A window of a series as binary chunks: one float chunk per dimension,
/// appended to `out`.
fn samples_chunks(series: &MultiDimSeries, start: usize, len: usize, out: &mut Vec<Chunk>) {
    for k in 0..series.dims() {
        out.push(Chunk::F64(series.dim(k)[start..start + len].to_vec()));
    }
}

/// One request/response on the streaming session's persistent connection,
/// checked for `ok`.
fn stream_request(conn: &mut WireConn, msg: &Message) -> Result<Json, String> {
    let reply = conn.request(msg).map_err(err)?;
    check_ok(&reply.json)?;
    Ok(reply.json)
}

/// `mdmp stream` — drive a live streaming session against a running
/// service: open it on the head of the query series, append the rest in
/// chunks (each an incremental delta-tile append on the server), then
/// close. Prints the per-append reuse accounting the server reports.
pub fn stream(args: &ParsedArgs) -> CmdResult {
    let addr: String = args.get_or("addr", "127.0.0.1:7661".into()).map_err(err)?;
    let m: usize = args.require("m").map_err(err)?;
    let mode: String = args.get_or("mode", "fp64".into()).map_err(err)?;
    let reference_path: String = args.require("reference").map_err(err)?;
    let query_path: Option<String> = args.get("query").map_err(err)?;
    // Samples the session opens with; the rest arrive as appends.
    let initial: usize = args.get_or("initial", 4 * m).map_err(err)?;
    let chunk: usize = args.get_or("chunk", m).map_err(err)?;
    args.reject_unknown().map_err(err)?;
    if chunk == 0 {
        return Err("--chunk must be positive".into());
    }

    let reference = data_io::read_csv(Path::new(&reference_path)).map_err(err)?;
    let query = match &query_path {
        Some(p) => data_io::read_csv(Path::new(p)).map_err(err)?,
        None => reference.clone(),
    };
    let initial = initial.clamp(m, query.len());

    // One persistent connection for the whole session; binary frames when
    // the server accepts the upgrade (MDMP_WIRE=json forces JSON lines).
    let mut conn = WireConn::connect(&addr, None, wire_preference()).map_err(err)?;
    let open = if conn.is_binary() {
        let mut chunks = Vec::with_capacity(reference.dims() + query.dims());
        samples_chunks(&reference, 0, reference.len(), &mut chunks);
        samples_chunks(&query, 0, initial, &mut chunks);
        Message {
            json: Json::obj(vec![
                ("op", Json::str("stream_open")),
                ("m", Json::num(m as f64)),
                ("mode", Json::str(mode)),
                ("reference_chunks", Json::num(reference.dims() as f64)),
                ("query_chunks", Json::num(query.dims() as f64)),
            ]),
            chunks,
        }
    } else {
        Message::json(Json::obj(vec![
            ("op", Json::str("stream_open")),
            ("m", Json::num(m as f64)),
            ("mode", Json::str(mode)),
            ("reference", samples_json(&reference, 0, reference.len())),
            ("query", samples_json(&query, 0, initial)),
        ]))
    };
    let response = stream_request(&mut conn, &open)?;
    let session = response
        .get("session")
        .and_then(|s| s.get("session"))
        .and_then(Json::as_u64)
        .ok_or("malformed response: no session id")?;
    println!(
        "session {session} open ({} wire): {} reference segments, {} of {} query samples",
        if conn.is_binary() { "binary" } else { "json" },
        reference.len() + 1 - m,
        initial,
        query.len()
    );

    let mut at = initial;
    while at < query.len() {
        let len = chunk.min(query.len() - at);
        let append = if conn.is_binary() {
            let mut chunks = Vec::with_capacity(query.dims());
            samples_chunks(&query, at, len, &mut chunks);
            Message {
                json: Json::obj(vec![
                    ("op", Json::str("stream_append")),
                    ("session", Json::num(session as f64)),
                    ("side", Json::str("query")),
                    ("samples_chunks", Json::num(query.dims() as f64)),
                ]),
                chunks,
            }
        } else {
            Message::json(Json::obj(vec![
                ("op", Json::str("stream_append")),
                ("session", Json::num(session as f64)),
                ("side", Json::str("query")),
                ("samples", samples_json(&query, at, len)),
            ]))
        };
        let response = stream_request(&mut conn, &append)?;
        at += len;
        let field = |k: &str| response.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        println!(
            "  +{len} samples -> {} profile columns ({} segments reused, {} fresh{})",
            response
                .get("session")
                .and_then(|s| s.get("n_query"))
                .map(|v| v.to_string())
                .unwrap_or_default(),
            field("reused_segments"),
            field("fresh_segments"),
            if response.get("reused_precalc").and_then(Json::as_bool) == Some(true) {
                ", cached precalc"
            } else {
                ""
            }
        );
    }

    stream_request(
        &mut conn,
        &Message::json(Json::obj(vec![
            ("op", Json::str("stream_close")),
            ("session", Json::num(session as f64)),
        ])),
    )?;
    println!(
        "session {session} closed ({}B sent, {}B received)",
        conn.bytes_sent(),
        conn.bytes_received()
    );
    Ok(())
}

/// `mdmp status` — query a job, the service stats, the metrics page, or
/// request shutdown.
pub fn status(args: &ParsedArgs) -> CmdResult {
    let addr: String = args.get_or("addr", "127.0.0.1:7661".into()).map_err(err)?;
    let id: Option<u64> = args.get("id").map_err(err)?;
    let metrics = args.flag("metrics");
    let shutdown = args.flag("shutdown");
    let abort = args.flag("abort");
    args.reject_unknown().map_err(err)?;

    if shutdown || abort {
        let response = request(
            &addr,
            &Json::obj(vec![
                ("op", Json::str("shutdown")),
                ("drain", Json::Bool(!abort)),
            ]),
        )
        .map_err(err)?;
        check_ok(&response)?;
        println!(
            "service stopped ({})",
            if abort { "aborted" } else { "drained" }
        );
        return Ok(());
    }
    if metrics {
        let response =
            request(&addr, &Json::obj(vec![("op", Json::str("metrics"))])).map_err(err)?;
        check_ok(&response)?;
        print!(
            "{}",
            response.get("text").and_then(Json::as_str).unwrap_or("")
        );
        return Ok(());
    }
    if let Some(id) = id {
        let response = request(
            &addr,
            &Json::obj(vec![
                ("op", Json::str("status")),
                ("id", Json::num(id as f64)),
            ]),
        )
        .map_err(err)?;
        check_ok(&response)?;
        print_job(response.get("job").ok_or("malformed response: no job")?);
        return Ok(());
    }
    let response = request(&addr, &Json::obj(vec![("op", Json::str("stats"))])).map_err(err)?;
    check_ok(&response)?;
    let stats = response
        .get("stats")
        .ok_or("malformed response: no stats")?;
    if let Json::Obj(pairs) = stats {
        println!("service stats at {addr}:");
        for (key, value) in pairs {
            if key == "kernel_seconds" {
                if let Json::Obj(kernels) = value {
                    println!("  kernel seconds:");
                    for (class, seconds) in kernels {
                        println!("    {class:<16} {seconds}");
                    }
                }
            } else {
                println!("  {key:<26} {value}");
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(parts: &[&str]) -> ParsedArgs {
        let raw: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        ParsedArgs::parse(&raw).unwrap()
    }

    /// End-to-end over a real socket: serve in-process, submit with
    /// --wait, read stats, shut down.
    #[test]
    fn submit_status_shutdown_round_trip() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            devices: 1,
            ..ServiceConfig::default()
        });
        let server = serve_tcp(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let addr = server.local_addr().to_string();

        let sub = parsed(&[
            "submit",
            "--addr",
            &addr,
            "--n",
            "64",
            "--m",
            "8",
            "--mode",
            "fp16",
            "--seed",
            "5",
            "--wait",
            "--timeout",
            "60",
        ]);
        submit(&sub).unwrap();

        // Same spec again: every tile precalc now comes from the cache.
        let sub2 = parsed(&[
            "submit",
            "--addr",
            &addr,
            "--n",
            "64",
            "--m",
            "8",
            "--mode",
            "fp16",
            "--seed",
            "5",
            "--wait",
            "--timeout",
            "60",
        ]);
        submit(&sub2).unwrap();
        let stats = service.stats();
        assert!(
            stats.precalc_cache_hits > 0,
            "repeat job must hit the cache"
        );

        status(&parsed(&["status", "--addr", &addr])).unwrap();
        status(&parsed(&["status", "--addr", &addr, "--id", "1"])).unwrap();
        status(&parsed(&["status", "--addr", &addr, "--metrics"])).unwrap();
        status(&parsed(&["status", "--addr", &addr, "--shutdown"])).unwrap();
        assert!(service.is_shutting_down());
        assert!(server.shutdown_served());
        drop(server);
    }

    /// `mdmp stream` end to end: serve in-process, stream a CSV in
    /// chunks, and confirm the session metrics landed.
    #[test]
    fn stream_round_trip() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            devices: 1,
            ..ServiceConfig::default()
        });
        let server = serve_tcp(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let addr = server.local_addr().to_string();

        let pair = mdmp_data::synthetic::generate_pair(&mdmp_data::synthetic::SyntheticConfig {
            n_subsequences: 57,
            dims: 2,
            m: 8,
            pattern: mdmp_data::synthetic::Pattern::Sine,
            embeddings: 1,
            noise: 0.3,
            pattern_amplitude: 1.0,
            seed: 11,
        });
        let mut csv = std::env::temp_dir();
        csv.push(format!("mdmp_cli_stream_{}.csv", std::process::id()));
        data_io::write_csv(&csv, &pair.query).unwrap();

        stream(&parsed(&[
            "stream",
            "--addr",
            &addr,
            "--reference",
            csv.to_str().unwrap(),
            "--m",
            "8",
            "--mode",
            "fp16",
            "--initial",
            "40",
            "--chunk",
            "6",
        ]))
        .unwrap();
        std::fs::remove_file(&csv).ok();

        let stats = service.stats();
        assert_eq!(stats.stream_opens, 1);
        // 64 samples: 40 initial + 6+6+6+6 appends.
        assert_eq!(stats.stream_appends, 4);
        assert_eq!(stats.stream_append_failures, 0);
        assert_eq!(stats.stream_precalc_reuses, 4);
        assert_eq!(stats.stream_sessions_open, 0, "session was closed");

        status(&parsed(&["status", "--addr", &addr, "--shutdown"])).unwrap();
    }

    #[test]
    fn submit_to_dead_address_errors() {
        let sub = parsed(&["submit", "--addr", "127.0.0.1:1", "--n", "64", "--m", "8"]);
        assert!(submit(&sub).is_err());
    }

    #[test]
    fn job_json_csv_and_synthetic_forms() {
        let synth = job_json(&parsed(&[
            "submit", "--n", "128", "--m", "8", "--seed", "3",
        ]))
        .unwrap();
        assert_eq!(
            synth.get("input").unwrap().get("kind").unwrap().as_str(),
            Some("synthetic")
        );
        assert_eq!(
            synth.get("input").unwrap().get("seed").unwrap().as_u64(),
            Some(3)
        );
        let csv = job_json(&parsed(&[
            "submit",
            "--reference",
            "/tmp/r.csv",
            "--query",
            "/tmp/q.csv",
            "--m",
            "8",
        ]))
        .unwrap();
        assert_eq!(
            csv.get("input").unwrap().get("kind").unwrap().as_str(),
            Some("csv")
        );
    }
}

//! A small, dependency-free argument parser: `--key value` and `--flag`
//! options after a subcommand, with typed accessors and helpful errors.

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// Parsed command line: a subcommand plus its options.
#[derive(Debug, Clone)]
pub struct ParsedArgs {
    /// The subcommand (first non-flag argument).
    pub command: String,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
    consumed: std::cell::RefCell<Vec<String>>,
}

/// Argument-parsing/validation error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

impl ParsedArgs {
    /// Parse raw arguments (without the program name).
    pub fn parse(raw: &[String]) -> Result<ParsedArgs, ArgError> {
        let mut iter = raw.iter().peekable();
        let command = iter
            .next()
            .ok_or_else(|| ArgError("missing subcommand".into()))?
            .clone();
        if command.starts_with("--") {
            return Err(ArgError(format!(
                "expected a subcommand before options, found '{command}'"
            )));
        }
        let mut options = BTreeMap::new();
        let mut flags = Vec::new();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(ArgError(format!(
                    "unexpected positional argument '{arg}' (options start with --)"
                )));
            };
            if key.is_empty() {
                return Err(ArgError("empty option name '--'".into()));
            }
            // `--key=value` form.
            if let Some((k, v)) = key.split_once('=') {
                if options.insert(k.to_string(), v.to_string()).is_some() {
                    return Err(ArgError(format!("option --{k} given twice")));
                }
                continue;
            }
            // `--key value` if the next token is not an option; else a flag.
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    let value = iter.next().unwrap().clone();
                    if options.insert(key.to_string(), value).is_some() {
                        return Err(ArgError(format!("option --{key} given twice")));
                    }
                }
                _ => flags.push(key.to_string()),
            }
        }
        Ok(ParsedArgs {
            command,
            options,
            flags,
            consumed: std::cell::RefCell::new(Vec::new()),
        })
    }

    /// A required typed option.
    pub fn require<T: FromStr>(&self, key: &str) -> Result<T, ArgError>
    where
        T::Err: fmt::Display,
    {
        self.consumed.borrow_mut().push(key.to_string());
        let raw = self
            .options
            .get(key)
            .ok_or_else(|| ArgError(format!("missing required option --{key}")))?;
        raw.parse()
            .map_err(|e| ArgError(format!("invalid value for --{key}: {e}")))
    }

    /// An optional typed option with a default.
    pub fn get_or<T: FromStr>(&self, key: &str, default: T) -> Result<T, ArgError>
    where
        T::Err: fmt::Display,
    {
        self.consumed.borrow_mut().push(key.to_string());
        match self.options.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|e| ArgError(format!("invalid value for --{key}: {e}"))),
        }
    }

    /// An optional typed option.
    pub fn get<T: FromStr>(&self, key: &str) -> Result<Option<T>, ArgError>
    where
        T::Err: fmt::Display,
    {
        self.consumed.borrow_mut().push(key.to_string());
        match self.options.get(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|e| ArgError(format!("invalid value for --{key}: {e}"))),
        }
    }

    /// A boolean flag (present or absent).
    pub fn flag(&self, key: &str) -> bool {
        self.consumed.borrow_mut().push(key.to_string());
        self.flags.iter().any(|f| f == key)
    }

    /// After reading everything, reject unknown options (typo guard).
    pub fn reject_unknown(&self) -> Result<(), ArgError> {
        let consumed = self.consumed.borrow();
        for key in self.options.keys().chain(self.flags.iter()) {
            if !consumed.iter().any(|c| c == key) {
                return Err(ArgError(format!(
                    "unknown option --{key} for command '{}'",
                    self.command
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Result<ParsedArgs, ArgError> {
        let raw: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        ParsedArgs::parse(&raw)
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = parse(&["compute", "--m", "64", "--self-join", "--tiles=16"]).unwrap();
        assert_eq!(a.command, "compute");
        assert_eq!(a.require::<usize>("m").unwrap(), 64);
        assert_eq!(a.get_or::<usize>("tiles", 1).unwrap(), 16);
        assert!(a.flag("self-join"));
        assert!(!a.flag("verbose"));
        assert!(a.reject_unknown().is_ok());
    }

    #[test]
    fn missing_required_option() {
        let a = parse(&["compute"]).unwrap();
        let err = a.require::<usize>("m").unwrap_err();
        assert!(err.to_string().contains("--m"));
    }

    #[test]
    fn invalid_typed_value() {
        let a = parse(&["compute", "--m", "abc"]).unwrap();
        assert!(a.require::<usize>("m").is_err());
    }

    #[test]
    fn duplicate_option_rejected() {
        assert!(parse(&["x", "--m", "1", "--m", "2"]).is_err());
        assert!(parse(&["x", "--m=1", "--m=2"]).is_err());
    }

    #[test]
    fn missing_subcommand_and_positional_garbage() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--m", "1"]).is_err());
        assert!(parse(&["cmd", "stray"]).is_err());
    }

    #[test]
    fn unknown_option_detected() {
        let a = parse(&["compute", "--m", "64", "--typo", "1"]).unwrap();
        let _ = a.require::<usize>("m");
        let err = a.reject_unknown().unwrap_err();
        assert!(err.to_string().contains("--typo"));
    }

    #[test]
    fn defaults_and_optionals() {
        let a = parse(&["estimate", "--n", "1024"]).unwrap();
        assert_eq!(a.get_or::<String>("mode", "fp64".into()).unwrap(), "fp64");
        assert_eq!(a.get::<usize>("gpus").unwrap(), None);
        assert_eq!(a.require::<usize>("n").unwrap(), 1024);
    }
}

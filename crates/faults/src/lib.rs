//! # mdmp-faults
//!
//! Deterministic, seed-driven fault injection for the mdmp pipeline — the
//! chaos-testing backbone behind DESIGN.md §9 ("Failure model").
//!
//! A [`FaultPlan`] decides, purely as a function of `(seed, tile, attempt)`
//! plus an optional global fire budget, whether a simulated device should
//! misbehave while executing a tile:
//!
//! * **kernel failure** — the tile kernel aborts and returns no result;
//! * **stall** — the kernel sleeps past its deadline before completing;
//! * **poisoned plane** — the result plane comes back with a NaN, an Inf,
//!   or a flipped bit (silent data corruption in reduced precision);
//! * **connection drop** — the service closes a client connection mid-job
//!   (a plan-level property, not a per-tile one).
//!
//! Determinism is the whole point: the same plan string produces the same
//! faults on every run, on every worker-thread count, because the decision
//! never consults wall-clock time or ambient randomness. Probabilistic
//! rates are derived by hashing `(seed, tile, kind)` with SplitMix64, so
//! they too replay exactly.
//!
//! ## Plan grammar
//!
//! A plan is a comma-separated list of directives, e.g.
//! `--fault-plan "kernel@0,stall@3:40,nan@5,seed=7,pkernel=0.1"`:
//!
//! | directive | meaning |
//! |---|---|
//! | `kernel@T` | tile `T`'s kernel fails |
//! | `stall@T` / `stall@T:MS` | tile `T` stalls (default 30 ms) |
//! | `nan@T` / `inf@T` | tile `T`'s plane is poisoned with NaN / +Inf |
//! | `flip@T:B` | bit `B` (0–63) of one plane value is flipped |
//! | `drop` | the service drops the client connection once mid-job |
//! | `seed=N` | seed for the probabilistic directives |
//! | `pkernel=F` / `pstall=F` / `pnan=F` | per-tile fault probabilities |
//! | `stall-ms=MS` | stall length for probabilistic stalls |
//! | `attempts=N` \| `attempts=all` | inject on attempts `< N` (default 1) |
//! | `budget=N` | at most `N` injections total, across all tiles |
//!
//! With the default `attempts=1` every fault fires only on a tile's first
//! attempt, so a single retry always succeeds and a retried run is
//! bit-identical to a fault-free one. `attempts=all` makes retries futile —
//! the exhausted-retry error paths. `budget=N` spans job attempts (the
//! plan is shared via `Arc`), so a service-level retry of a whole job can
//! observe the fault burning out.

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default stall length when a directive does not specify one.
pub const DEFAULT_STALL_MS: u64 = 30;

/// What a fault injection does to one tile-kernel attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The kernel aborts; no result plane is produced.
    Kernel,
    /// The kernel completes, but only after sleeping `millis` — long
    /// enough to blow a per-kernel deadline if one is configured.
    Stall {
        /// Injected delay in milliseconds.
        millis: u64,
    },
    /// The result plane carries a NaN value.
    PoisonNan,
    /// The result plane carries a +Inf value where a finite distance
    /// belongs.
    PoisonInf,
    /// One bit of a result value is XOR-flipped (bit 63 = sign,
    /// 62–52 = exponent, 51–0 = mantissa).
    BitFlip {
        /// Bit index in the f64 representation, 0–63.
        bit: u8,
    },
}

impl FaultKind {
    fn tag(self) -> u64 {
        match self {
            FaultKind::Kernel => 1,
            FaultKind::Stall { .. } => 2,
            FaultKind::PoisonNan => 3,
            FaultKind::PoisonInf => 4,
            FaultKind::BitFlip { .. } => 5,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Kernel => write!(f, "kernel"),
            FaultKind::Stall { millis } => write!(f, "stall:{millis}"),
            FaultKind::PoisonNan => write!(f, "nan"),
            FaultKind::PoisonInf => write!(f, "inf"),
            FaultKind::BitFlip { bit } => write!(f, "flip:{bit}"),
        }
    }
}

/// Error parsing a fault-plan spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError(String);

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault plan: {}", self.0)
    }
}

impl std::error::Error for PlanParseError {}

/// A deterministic fault schedule for one run (or one service job).
///
/// Cheap to share behind an `Arc`; the only mutable state is the optional
/// fire budget, which is an atomic so concurrent tile workers draw from it
/// race-free.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    /// Inject while a tile's attempt number is below this (1 = first
    /// attempt only, `u32::MAX` = every attempt).
    faulty_attempts: u32,
    /// Remaining total injections; `None` = unlimited.
    budget: Option<AtomicU64>,
    /// Explicit `(tile, fault)` directives; first match wins.
    directives: Vec<(usize, FaultKind)>,
    p_kernel: f64,
    p_stall: f64,
    p_nan: f64,
    stall_ms: u64,
    drop_connection: bool,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 0,
            faulty_attempts: 1,
            budget: None,
            directives: Vec::new(),
            p_kernel: 0.0,
            p_stall: 0.0,
            p_nan: 0.0,
            stall_ms: DEFAULT_STALL_MS,
            drop_connection: false,
        }
    }
}

impl Clone for FaultPlan {
    fn clone(&self) -> FaultPlan {
        FaultPlan {
            seed: self.seed,
            faulty_attempts: self.faulty_attempts,
            budget: self
                .budget
                .as_ref()
                // relaxed-ok: cloning snapshots a lone counter; the clone
                // is published to other threads by its owner, not here.
                .map(|b| AtomicU64::new(b.load(Ordering::Relaxed))),
            directives: self.directives.clone(),
            p_kernel: self.p_kernel,
            p_stall: self.p_stall,
            p_nan: self.p_nan,
            stall_ms: self.stall_ms,
            drop_connection: self.drop_connection,
        }
    }
}

impl FaultPlan {
    /// An empty plan that injects nothing.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Builder: set the seed for probabilistic directives.
    pub fn with_seed(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }

    /// Builder: add an explicit fault on tile `tile`.
    pub fn with_fault(mut self, tile: usize, kind: FaultKind) -> FaultPlan {
        self.directives.push((tile, kind));
        self
    }

    /// Builder: inject on attempts `< n` (default 1; [`FaultPlan::always`]
    /// for every attempt).
    pub fn with_faulty_attempts(mut self, n: u32) -> FaultPlan {
        self.faulty_attempts = n;
        self
    }

    /// Builder: inject on every attempt — retries cannot outrun the fault.
    pub fn always(self) -> FaultPlan {
        self.with_faulty_attempts(u32::MAX)
    }

    /// Builder: cap the total number of injections across the plan's life.
    pub fn with_budget(mut self, n: u64) -> FaultPlan {
        self.budget = Some(AtomicU64::new(n));
        self
    }

    /// Builder: per-tile kernel-failure probability.
    pub fn with_p_kernel(mut self, p: f64) -> FaultPlan {
        self.p_kernel = p.clamp(0.0, 1.0);
        self
    }

    /// Builder: per-tile stall probability.
    pub fn with_p_stall(mut self, p: f64) -> FaultPlan {
        self.p_stall = p.clamp(0.0, 1.0);
        self
    }

    /// Builder: per-tile NaN-poison probability.
    pub fn with_p_nan(mut self, p: f64) -> FaultPlan {
        self.p_nan = p.clamp(0.0, 1.0);
        self
    }

    /// Builder: stall length for probabilistic stalls.
    pub fn with_stall_ms(mut self, ms: u64) -> FaultPlan {
        self.stall_ms = ms;
        self
    }

    /// Builder: drop the client connection once mid-job (service level).
    pub fn with_connection_drop(mut self) -> FaultPlan {
        self.drop_connection = true;
        self
    }

    /// Whether this plan asks the service to drop the client connection.
    pub fn drops_connection(&self) -> bool {
        self.drop_connection
    }

    /// Whether the plan can inject anything at the tile level.
    pub fn has_tile_faults(&self) -> bool {
        !self.directives.is_empty() || self.p_kernel > 0.0 || self.p_stall > 0.0 || self.p_nan > 0.0
    }

    /// The fault to inject on `attempt` (0-based) of `tile`, if any.
    ///
    /// Deterministic in `(seed, tile)`; the attempt number only gates the
    /// `attempts=` window. A `Some` return consumes one unit of budget —
    /// once the budget is spent the plan goes quiet.
    pub fn tile_fault(&self, tile: usize, attempt: u32) -> Option<FaultKind> {
        if attempt >= self.faulty_attempts {
            return None;
        }
        let kind = self.decide(tile)?;
        if let Some(budget) = &self.budget {
            // Draw one unit; if the pool is already empty the fault fizzles.
            let drawn = budget
                // relaxed-ok: the budget only needs an atomic decrement
                // so at most N faults fire; it orders no other data.
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok();
            if !drawn {
                return None;
            }
        }
        Some(kind)
    }

    /// The fault `tile` would suffer, ignoring attempt window and budget.
    fn decide(&self, tile: usize) -> Option<FaultKind> {
        if let Some((_, kind)) = self.directives.iter().find(|(t, _)| *t == tile) {
            return Some(*kind);
        }
        if self.p_kernel > 0.0 && unit(self.seed, tile, FaultKind::Kernel.tag()) < self.p_kernel {
            return Some(FaultKind::Kernel);
        }
        let stall = FaultKind::Stall {
            millis: self.stall_ms,
        };
        if self.p_stall > 0.0 && unit(self.seed, tile, stall.tag()) < self.p_stall {
            return Some(stall);
        }
        if self.p_nan > 0.0 && unit(self.seed, tile, FaultKind::PoisonNan.tag()) < self.p_nan {
            return Some(FaultKind::PoisonNan);
        }
        None
    }

    /// Remaining fire budget, if one is set.
    pub fn budget_remaining(&self) -> Option<u64> {
        // relaxed-ok: reporting read of a lone counter.
        self.budget.as_ref().map(|b| b.load(Ordering::Relaxed))
    }
}

/// SplitMix64 — the same deterministic mixer the vendored `rand` uses.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// A uniform draw in `[0, 1)` keyed by `(seed, tile, kind)`.
fn unit(seed: u64, tile: usize, tag: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(tile as u64 ^ (tag << 56)));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl FromStr for FaultPlan {
    type Err = PlanParseError;

    fn from_str(s: &str) -> Result<FaultPlan, PlanParseError> {
        let mut plan = FaultPlan::new();
        for raw in s.split(',') {
            let part = raw.trim();
            if part.is_empty() {
                continue;
            }
            if part == "drop" {
                plan.drop_connection = true;
            } else if let Some((key, value)) = part.split_once('=') {
                plan.apply_kv(key.trim(), value.trim())?;
            } else if let Some((kind, target)) = part.split_once('@') {
                plan.apply_directive(kind.trim(), target.trim())?;
            } else {
                return Err(PlanParseError(format!("unknown directive `{part}`")));
            }
        }
        Ok(plan)
    }
}

impl FaultPlan {
    fn apply_kv(&mut self, key: &str, value: &str) -> Result<(), PlanParseError> {
        let bad = |what: &str| PlanParseError(format!("bad {what} value `{value}`"));
        match key {
            "seed" => self.seed = value.parse().map_err(|_| bad("seed"))?,
            "pkernel" => self.p_kernel = parse_prob(value)?,
            "pstall" => self.p_stall = parse_prob(value)?,
            "pnan" => self.p_nan = parse_prob(value)?,
            "stall-ms" => self.stall_ms = value.parse().map_err(|_| bad("stall-ms"))?,
            "attempts" => {
                self.faulty_attempts = if value == "all" {
                    u32::MAX
                } else {
                    value.parse().map_err(|_| bad("attempts"))?
                }
            }
            "budget" => {
                self.budget = Some(AtomicU64::new(value.parse().map_err(|_| bad("budget"))?))
            }
            _ => return Err(PlanParseError(format!("unknown key `{key}`"))),
        }
        Ok(())
    }

    fn apply_directive(&mut self, kind: &str, target: &str) -> Result<(), PlanParseError> {
        let (tile_str, arg) = match target.split_once(':') {
            Some((t, a)) => (t, Some(a)),
            None => (target, None),
        };
        let tile: usize = tile_str
            .parse()
            .map_err(|_| PlanParseError(format!("bad tile index `{tile_str}`")))?;
        let fault = match (kind, arg) {
            ("kernel", None) => FaultKind::Kernel,
            ("stall", None) => FaultKind::Stall {
                millis: self.stall_ms,
            },
            ("stall", Some(ms)) => FaultKind::Stall {
                millis: ms
                    .parse()
                    .map_err(|_| PlanParseError(format!("bad stall millis `{ms}`")))?,
            },
            ("nan", None) => FaultKind::PoisonNan,
            ("inf", None) => FaultKind::PoisonInf,
            ("flip", Some(bit)) => {
                let bit: u8 = bit
                    .parse()
                    .ok()
                    .filter(|b| *b < 64)
                    .ok_or_else(|| PlanParseError(format!("bad bit index `{bit}` (0-63)")))?;
                FaultKind::BitFlip { bit }
            }
            ("flip", None) => {
                return Err(PlanParseError("flip@T needs a bit index: flip@T:B".into()))
            }
            _ => return Err(PlanParseError(format!("unknown directive `{kind}@`"))),
        };
        self.directives.push((tile, fault));
        Ok(())
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        for (tile, kind) in &self.directives {
            parts.push(match kind {
                FaultKind::Kernel => format!("kernel@{tile}"),
                FaultKind::Stall { millis } => format!("stall@{tile}:{millis}"),
                FaultKind::PoisonNan => format!("nan@{tile}"),
                FaultKind::PoisonInf => format!("inf@{tile}"),
                FaultKind::BitFlip { bit } => format!("flip@{tile}:{bit}"),
            });
        }
        if self.seed != 0 {
            parts.push(format!("seed={}", self.seed));
        }
        if self.p_kernel > 0.0 {
            parts.push(format!("pkernel={}", self.p_kernel));
        }
        if self.p_stall > 0.0 {
            parts.push(format!("pstall={}", self.p_stall));
        }
        if self.p_nan > 0.0 {
            parts.push(format!("pnan={}", self.p_nan));
        }
        if self.stall_ms != DEFAULT_STALL_MS {
            parts.push(format!("stall-ms={}", self.stall_ms));
        }
        if self.faulty_attempts != 1 {
            if self.faulty_attempts == u32::MAX {
                parts.push("attempts=all".into());
            } else {
                parts.push(format!("attempts={}", self.faulty_attempts));
            }
        }
        if let Some(b) = self.budget_remaining() {
            parts.push(format!("budget={b}"));
        }
        if self.drop_connection {
            parts.push("drop".into());
        }
        write!(f, "{}", parts.join(","))
    }
}

fn parse_prob(value: &str) -> Result<f64, PlanParseError> {
    let p: f64 = value
        .parse()
        .map_err(|_| PlanParseError(format!("bad probability `{value}`")))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(PlanParseError(format!(
            "probability `{value}` outside [0, 1]"
        )));
    }
    Ok(p)
}

/// A cluster-scope fault, applied by the `mdmp-cluster` coordinator to
/// one worker *node* rather than to one tile (DESIGN.md §12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeFaultKind {
    /// Sever the node's TCP connection before the coordinator reads the
    /// reply for the matching request. The node itself is fine, so the
    /// coordinator may reconnect and keep using it; the in-flight tile
    /// lease is re-dispatched.
    DropConnection,
    /// Kill the node: sever the connection and refuse every reconnection
    /// attempt for the rest of the job, as a crashed machine would.
    Kill,
}

/// A deterministic cluster-scope fault plan: directives keyed by
/// `(node, tile_seq)` where `tile_seq` counts the tile-execution requests
/// the coordinator has sent to that node (0-based). Purely directive
/// driven — no probabilities — so a replay of the same shard schedule
/// injects exactly the same faults.
///
/// Spec-string grammar, comma-separated (mirrors [`FaultPlan`]):
/// `nodedrop@N:S` drops node `N`'s connection on its `S`-th request,
/// `nodekill@N:S` kills node `N` at its `S`-th request.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterFaultPlan {
    directives: Vec<(usize, u64, NodeFaultKind)>,
}

impl ClusterFaultPlan {
    /// An empty plan injecting nothing.
    pub fn new() -> ClusterFaultPlan {
        ClusterFaultPlan::default()
    }

    /// Add a directive: inject `kind` on node `node`'s `tile_seq`-th tile
    /// request (builder style).
    pub fn with_node_fault(
        mut self,
        node: usize,
        tile_seq: u64,
        kind: NodeFaultKind,
    ) -> ClusterFaultPlan {
        self.directives.push((node, tile_seq, kind));
        self
    }

    /// The fault to inject when node `node` issues its `tile_seq`-th tile
    /// request, if any (first matching directive wins).
    pub fn node_fault(&self, node: usize, tile_seq: u64) -> Option<NodeFaultKind> {
        self.directives
            .iter()
            .find(|(n, s, _)| *n == node && *s == tile_seq)
            .map(|(_, _, k)| *k)
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.directives.is_empty()
    }

    /// Whether the plan ever kills `node` (at any sequence number).
    pub fn kills_node(&self, node: usize) -> bool {
        self.directives
            .iter()
            .any(|(n, _, k)| *n == node && *k == NodeFaultKind::Kill)
    }
}

impl FromStr for ClusterFaultPlan {
    type Err = PlanParseError;

    fn from_str(s: &str) -> Result<ClusterFaultPlan, PlanParseError> {
        let mut plan = ClusterFaultPlan::new();
        for raw in s.split(',') {
            let part = raw.trim();
            if part.is_empty() {
                continue;
            }
            let (kind, target) = part
                .split_once('@')
                .ok_or_else(|| PlanParseError(format!("unknown node directive `{part}`")))?;
            let (node_str, seq_str) = target.split_once(':').ok_or_else(|| {
                PlanParseError(format!("node directive needs `@N:S`, got `{part}`"))
            })?;
            let node: usize = node_str
                .parse()
                .map_err(|_| PlanParseError(format!("bad node index `{node_str}`")))?;
            let seq: u64 = seq_str
                .parse()
                .map_err(|_| PlanParseError(format!("bad tile sequence `{seq_str}`")))?;
            let fault = match kind.trim() {
                "nodedrop" => NodeFaultKind::DropConnection,
                "nodekill" => NodeFaultKind::Kill,
                other => return Err(PlanParseError(format!("unknown node fault `{other}@`"))),
            };
            plan.directives.push((node, seq, fault));
        }
        Ok(plan)
    }
}

impl fmt::Display for ClusterFaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .directives
            .iter()
            .map(|(node, seq, kind)| match kind {
                NodeFaultKind::DropConnection => format!("nodedrop@{node}:{seq}"),
                NodeFaultKind::Kill => format!("nodekill@{node}:{seq}"),
            })
            .collect();
        write!(f, "{}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_quiet() {
        let plan = FaultPlan::new();
        for tile in 0..64 {
            assert_eq!(plan.tile_fault(tile, 0), None);
        }
        assert!(!plan.drops_connection());
        assert!(!plan.has_tile_faults());
    }

    #[test]
    fn explicit_directives_fire_on_first_attempt_only() {
        let plan = FaultPlan::new()
            .with_fault(3, FaultKind::Kernel)
            .with_fault(5, FaultKind::PoisonNan);
        assert_eq!(plan.tile_fault(3, 0), Some(FaultKind::Kernel));
        assert_eq!(plan.tile_fault(3, 1), None, "retry must succeed");
        assert_eq!(plan.tile_fault(5, 0), Some(FaultKind::PoisonNan));
        assert_eq!(plan.tile_fault(4, 0), None);
    }

    #[test]
    fn attempts_all_defeats_retries() {
        let plan = FaultPlan::new().with_fault(0, FaultKind::Kernel).always();
        for attempt in 0..10 {
            assert_eq!(plan.tile_fault(0, attempt), Some(FaultKind::Kernel));
        }
    }

    #[test]
    fn budget_burns_out() {
        let plan = FaultPlan::new()
            .with_fault(0, FaultKind::Kernel)
            .always()
            .with_budget(2);
        assert!(plan.tile_fault(0, 0).is_some());
        assert!(plan.tile_fault(0, 1).is_some());
        assert_eq!(plan.tile_fault(0, 2), None, "budget exhausted");
        assert_eq!(plan.budget_remaining(), Some(0));
    }

    #[test]
    fn probabilistic_faults_are_deterministic_and_roughly_calibrated() {
        let plan = FaultPlan::new().with_seed(42).with_p_kernel(0.25);
        let fired: Vec<usize> = (0..1000).filter(|&t| plan.decide(t).is_some()).collect();
        let again: Vec<usize> = (0..1000).filter(|&t| plan.decide(t).is_some()).collect();
        assert_eq!(fired, again, "same seed, same faults");
        assert!(
            (150..350).contains(&fired.len()),
            "p=0.25 fired {} of 1000",
            fired.len()
        );
        let other = FaultPlan::new().with_seed(43).with_p_kernel(0.25);
        let other_fired: Vec<usize> = (0..1000).filter(|&t| other.decide(t).is_some()).collect();
        assert_ne!(fired, other_fired, "different seed, different faults");
    }

    #[test]
    fn spec_round_trips() {
        let spec = "kernel@0,stall@3:40,nan@5,inf@7,flip@9:62,seed=7,pkernel=0.1,attempts=all,budget=4,drop";
        let plan: FaultPlan = spec.parse().unwrap();
        assert_eq!(plan.tile_fault(0, 0), Some(FaultKind::Kernel));
        assert_eq!(plan.tile_fault(3, 1), Some(FaultKind::Stall { millis: 40 }));
        assert_eq!(plan.tile_fault(5, 2), Some(FaultKind::PoisonNan));
        assert_eq!(plan.budget_remaining(), Some(1), "three draws spent");
        assert!(plan.drops_connection());
        let rendered = plan.to_string();
        let reparsed: FaultPlan = rendered.parse().unwrap();
        assert_eq!(reparsed.to_string(), rendered, "Display/parse fixpoint");
    }

    #[test]
    fn default_stall_applies_to_probabilistic_and_bare_directives() {
        let plan: FaultPlan = "stall@2,stall-ms=75".parse().unwrap();
        // `stall-ms` after the directive does not rewrite it (first parse
        // wins), so the bare directive takes the default at parse time.
        assert_eq!(
            plan.tile_fault(2, 0),
            Some(FaultKind::Stall {
                millis: DEFAULT_STALL_MS
            })
        );
        let plan: FaultPlan = "stall-ms=75,stall@2".parse().unwrap();
        assert_eq!(plan.tile_fault(2, 0), Some(FaultKind::Stall { millis: 75 }));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("bogus".parse::<FaultPlan>().is_err());
        assert!("kernel@x".parse::<FaultPlan>().is_err());
        assert!("flip@1".parse::<FaultPlan>().is_err());
        assert!("flip@1:64".parse::<FaultPlan>().is_err());
        assert!("pkernel=1.5".parse::<FaultPlan>().is_err());
        assert!("attempts=maybe".parse::<FaultPlan>().is_err());
    }

    #[test]
    fn clone_snapshots_budget() {
        let plan = FaultPlan::new()
            .with_fault(0, FaultKind::Kernel)
            .always()
            .with_budget(3);
        assert!(plan.tile_fault(0, 0).is_some());
        let copy = plan.clone();
        assert_eq!(copy.budget_remaining(), Some(2));
    }

    #[test]
    fn empty_cluster_plan_is_quiet() {
        let plan = ClusterFaultPlan::new();
        assert!(plan.is_empty());
        for node in 0..4 {
            for seq in 0..8 {
                assert_eq!(plan.node_fault(node, seq), None);
            }
        }
    }

    #[test]
    fn cluster_directives_fire_at_exact_coordinates() {
        let plan = ClusterFaultPlan::new()
            .with_node_fault(1, 2, NodeFaultKind::DropConnection)
            .with_node_fault(2, 0, NodeFaultKind::Kill);
        assert_eq!(plan.node_fault(1, 2), Some(NodeFaultKind::DropConnection));
        assert_eq!(plan.node_fault(2, 0), Some(NodeFaultKind::Kill));
        assert_eq!(plan.node_fault(1, 1), None);
        assert_eq!(plan.node_fault(0, 2), None);
        assert!(plan.kills_node(2));
        assert!(!plan.kills_node(1));
    }

    #[test]
    fn cluster_plan_parse_display_fixpoint() {
        let spec = "nodedrop@1:2,nodekill@2:0";
        let plan: ClusterFaultPlan = spec.parse().unwrap();
        assert_eq!(plan.to_string(), spec);
        let reparsed: ClusterFaultPlan = plan.to_string().parse().unwrap();
        assert_eq!(reparsed, plan);
        let empty: ClusterFaultPlan = "".parse().unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.to_string(), "");
    }

    #[test]
    fn bad_cluster_specs_are_rejected() {
        assert!("nodedrop".parse::<ClusterFaultPlan>().is_err());
        assert!("nodedrop@1".parse::<ClusterFaultPlan>().is_err());
        assert!("nodedrop@x:0".parse::<ClusterFaultPlan>().is_err());
        assert!("nodedrop@0:y".parse::<ClusterFaultPlan>().is_err());
        assert!("nodeburn@0:0".parse::<ClusterFaultPlan>().is_err());
    }
}

//! Property tests of the accuracy metrics.

use mdmp_core::MatrixProfile;
use mdmp_metrics::{embedded_recall, f_score, recall_rate, relative_accuracy, relative_error};
use proptest::prelude::*;

fn arbitrary_profile(n: usize, d: usize, seed: u64) -> MatrixProfile {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let p: Vec<f64> = (0..n * d).map(|_| next() * 10.0).collect();
    let i: Vec<i64> = (0..n * d).map(|_| (next() * 100.0) as i64).collect();
    MatrixProfile::from_raw(p, i, n, d)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn metrics_are_bounded_and_reflexive(seed in 0u64..10_000, n in 1usize..40, d in 1usize..5) {
        let a = arbitrary_profile(n, d, seed);
        let b = arbitrary_profile(n, d, seed ^ 0xFFFF);
        // Bounds.
        let r = recall_rate(&a, &b);
        prop_assert!((0.0..=1.0).contains(&r));
        let acc = relative_accuracy(&a, &b);
        prop_assert!((0.0..=1.0).contains(&acc));
        // Reflexivity.
        prop_assert_eq!(recall_rate(&a, &a), 1.0);
        prop_assert_eq!(relative_error(&a, &a), 0.0);
        prop_assert_eq!(relative_accuracy(&a, &a), 1.0);
    }

    #[test]
    fn perturbation_monotonicity(seed in 0u64..1_000, eps_pow in 1i32..10) {
        // Growing multiplicative perturbation never increases accuracy.
        let a = arbitrary_profile(20, 2, seed);
        let perturb = |scale: f64| {
            let p: Vec<f64> = (0..20 * 2)
                .map(|idx| a.value(idx % 20, idx / 20) * scale)
                .collect();
            let i: Vec<i64> = (0..20 * 2)
                .map(|idx| a.index(idx % 20, idx / 20))
                .collect();
            MatrixProfile::from_raw(p, i, 20, 2)
        };
        let small = perturb(1.0 + 2f64.powi(-eps_pow - 1));
        let large = perturb(1.0 + 2f64.powi(-eps_pow));
        prop_assert!(
            relative_accuracy(&a, &small) >= relative_accuracy(&a, &large) - 1e-12
        );
        // Indices unchanged: recall stays perfect under value perturbation.
        prop_assert_eq!(recall_rate(&a, &large), 1.0);
    }

    #[test]
    fn embedded_recall_monotone_in_tolerance(
        seed in 0u64..1_000,
        tol_a in 0usize..10,
        tol_b in 0usize..10,
    ) {
        let profile = arbitrary_profile(50, 1, seed);
        let query_locs = [3usize, 17, 40];
        let ref_locs = [10usize, 45, 80];
        let (lo, hi) = if tol_a <= tol_b { (tol_a, tol_b) } else { (tol_b, tol_a) };
        let (r_lo, _, _) = embedded_recall(&profile, 0, &query_locs, &ref_locs, lo);
        let (r_hi, _, _) = embedded_recall(&profile, 0, &query_locs, &ref_locs, hi);
        prop_assert!(r_hi >= r_lo, "recall must grow with tolerance");
    }

    #[test]
    fn f_score_bounds_and_perfect_case(seed in 0u64..1_000, n in 1usize..60) {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            (state >> 33) as usize
        };
        let truth: Vec<u8> = (0..n).map(|_| (next() % 4) as u8).collect();
        let perfect: Vec<Option<u8>> = truth.iter().map(|&t| Some(t)).collect();
        prop_assert_eq!(f_score(&perfect, &truth), 1.0);
        let noisy: Vec<Option<u8>> = truth
            .iter()
            .map(|&t| if next() % 3 == 0 { None } else { Some((t + (next() % 2) as u8) % 4) })
            .collect();
        let f = f_score(&noisy, &truth);
        prop_assert!((0.0..=1.0).contains(&f));
    }
}

//! Numerical accuracy metrics: recall rate `R` and relative accuracy `A`
//! (Fig. 2, Fig. 10).

use mdmp_core::MatrixProfile;

/// Recall rate `R`: the ratio of matching matrix-profile indices to the
/// total number of indices (§V-A, after Cheng et al.).
///
/// # Panics
/// Panics on shape mismatch.
pub fn recall_rate(reference: &MatrixProfile, test: &MatrixProfile) -> f64 {
    assert_eq!(reference.n_query(), test.n_query(), "shape mismatch");
    assert_eq!(reference.dims(), test.dims(), "shape mismatch");
    let mut matches = 0usize;
    let mut total = 0usize;
    for k in 0..reference.dims() {
        let ri = reference.index_dim(k);
        let ti = test.index_dim(k);
        for (a, b) in ri.iter().zip(ti) {
            total += 1;
            if a == b {
                matches += 1;
            }
        }
    }
    matches as f64 / total as f64
}

/// Relative error `E`: mean relative discrepancy of the profile values
/// against the reference. Entries where the reference is non-finite are
/// skipped; a non-finite test value against a finite reference counts as
/// error 1 (fully wrong). Each entry's contribution is capped at 1 so a
/// single overflow cannot dominate the mean.
pub fn relative_error(reference: &MatrixProfile, test: &MatrixProfile) -> f64 {
    assert_eq!(reference.n_query(), test.n_query(), "shape mismatch");
    assert_eq!(reference.dims(), test.dims(), "shape mismatch");
    let mut total = 0.0;
    let mut count = 0usize;
    for k in 0..reference.dims() {
        let rp = reference.profile_dim(k);
        let tp = test.profile_dim(k);
        for (&a, &b) in rp.iter().zip(tp) {
            if !a.is_finite() {
                continue;
            }
            count += 1;
            if !b.is_finite() {
                total += 1.0;
                continue;
            }
            let denom = a.abs().max(1e-12);
            total += ((a - b).abs() / denom).min(1.0);
        }
    }
    if count == 0 {
        return 0.0;
    }
    total / count as f64
}

/// Relative accuracy `A = 1 − E`, reported in percent in the paper
/// (Zhu et al. [25]); clamped to `[0, 1]`.
pub fn relative_accuracy(reference: &MatrixProfile, test: &MatrixProfile) -> f64 {
    (1.0 - relative_error(reference, test)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(p: Vec<f64>, i: Vec<i64>, n: usize, d: usize) -> MatrixProfile {
        MatrixProfile::from_raw(p, i, n, d)
    }

    #[test]
    fn identical_profiles_are_perfect() {
        let a = profile(vec![1.0, 2.0, 3.0, 4.0], vec![5, 6, 7, 8], 2, 2);
        assert_eq!(recall_rate(&a, &a), 1.0);
        assert_eq!(relative_accuracy(&a, &a), 1.0);
        assert_eq!(relative_error(&a, &a), 0.0);
    }

    #[test]
    fn recall_counts_index_matches() {
        let a = profile(vec![1.0; 4], vec![1, 2, 3, 4], 2, 2);
        let b = profile(vec![1.0; 4], vec![1, 2, 9, 4], 2, 2);
        assert_eq!(recall_rate(&a, &b), 0.75);
    }

    #[test]
    fn relative_error_is_mean_of_capped_discrepancies() {
        let a = profile(vec![1.0, 2.0], vec![0, 0], 2, 1);
        let b = profile(vec![1.1, 2.0], vec![0, 0], 2, 1);
        // (0.1/1.0 + 0)/2 = 0.05
        assert!((relative_error(&a, &b) - 0.05).abs() < 1e-12);
        assert!((relative_accuracy(&a, &b) - 0.95).abs() < 1e-12);
    }

    #[test]
    fn overflow_entries_cap_at_one() {
        let a = profile(vec![1.0, 1.0], vec![0, 0], 2, 1);
        let b = profile(vec![1e9, 1.0], vec![0, 0], 2, 1);
        assert!((relative_error(&a, &b) - 0.5).abs() < 1e-12);
        let c = profile(vec![f64::NAN, 1.0], vec![0, 0], 2, 1);
        assert!((relative_error(&a, &c) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unset_reference_entries_are_skipped() {
        let a = profile(vec![f64::INFINITY, 2.0], vec![-1, 0], 2, 1);
        let b = profile(vec![f64::INFINITY, 2.0], vec![-1, 0], 2, 1);
        assert_eq!(relative_error(&a, &b), 0.0);
        assert_eq!(relative_accuracy(&a, &b), 1.0);
    }

    #[test]
    fn accuracy_clamped_to_unit_interval() {
        let a = profile(vec![1.0], vec![0], 1, 1);
        let b = profile(vec![5.0], vec![0], 1, 1);
        let acc = relative_accuracy(&a, &b);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let a = profile(vec![1.0], vec![0], 1, 1);
        let b = profile(vec![1.0, 2.0], vec![0, 0], 2, 1);
        let _ = recall_rate(&a, &b);
    }
}

//! Practical accuracy for pattern detection: `R_embedded` (Fig. 3) and the
//! relaxed variant `R^r_embedded` (Fig. 12).
//!
//! For series with patterns embedded at known locations, a detection is
//! successful when the matrix-profile index at a query embedding points to
//! a reference embedding. The relaxed variant accepts an index within
//! `tolerance` samples of the true location, with the relaxation factor `r`
//! defined as `tolerance / m` (§V-A).

use mdmp_core::MatrixProfile;

/// The tolerance (in samples) corresponding to relaxation factor `r` for
/// segment length `m`, e.g. `r = 0.05` → 5% of the window (Fig. 12).
pub fn relaxed_tolerance(r: f64, m: usize) -> usize {
    assert!(r >= 0.0, "relaxation factor must be non-negative");
    (r * m as f64).round() as usize
}

/// Recall of embedded-motif detection.
///
/// For every query embedding location, look up the matrix-profile index at
/// that query position (dimension `k`) and count the detection as
/// successful if it lies within `tolerance` samples of **any** reference
/// embedding location. `tolerance = 0` is the strict `R_embedded` of
/// Fig. 3; `tolerance = relaxed_tolerance(r, m)` gives `R^r_embedded`.
///
/// Returns `(recall, hits, total)`.
pub fn embedded_recall(
    profile: &MatrixProfile,
    k: usize,
    query_locs: &[usize],
    reference_locs: &[usize],
    tolerance: usize,
) -> (f64, usize, usize) {
    assert!(k < profile.dims(), "dimension out of range");
    assert!(!query_locs.is_empty(), "no query embeddings given");
    let idx = profile.index_dim(k);
    let mut hits = 0usize;
    for &q in query_locs {
        assert!(q < profile.n_query(), "query location out of range");
        let found = idx[q];
        if found < 0 {
            continue;
        }
        let found = found as usize;
        if reference_locs
            .iter()
            .any(|&r| found.abs_diff(r) <= tolerance)
        {
            hits += 1;
        }
    }
    (
        hits as f64 / query_locs.len() as f64,
        hits,
        query_locs.len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile_with_indices(indices: Vec<i64>) -> MatrixProfile {
        let n = indices.len();
        MatrixProfile::from_raw(vec![1.0; n], indices, n, 1)
    }

    #[test]
    fn strict_recall_requires_exact_location() {
        let p = profile_with_indices(vec![0, 10, 20, 30, 40, 55]);
        // Query embeddings at positions 1 and 5; reference embeddings at 10 and 50.
        let (r, hits, total) = embedded_recall(&p, 0, &[1, 5], &[10, 50], 0);
        assert_eq!(hits, 1); // position 1 -> 10 exact; position 5 -> 55 != 50
        assert_eq!(total, 2);
        assert!((r - 0.5).abs() < 1e-12);
    }

    #[test]
    fn relaxed_recall_accepts_nearby_indices() {
        let p = profile_with_indices(vec![0, 10, 20, 30, 40, 55]);
        let tol = relaxed_tolerance(0.05, 128); // 6 samples
        assert_eq!(tol, 6);
        let (r, hits, _) = embedded_recall(&p, 0, &[1, 5], &[10, 50], tol);
        assert_eq!(hits, 2); // 55 within 6 of 50
        assert_eq!(r, 1.0);
    }

    #[test]
    fn unset_index_never_counts() {
        let p = profile_with_indices(vec![-1, -1]);
        let (r, hits, _) = embedded_recall(&p, 0, &[0, 1], &[0], 1000);
        assert_eq!(hits, 0);
        assert_eq!(r, 0.0);
    }

    #[test]
    fn any_reference_location_is_a_hit() {
        let p = profile_with_indices(vec![77]);
        let (r, _, _) = embedded_recall(&p, 0, &[0], &[5, 77, 200], 0);
        assert_eq!(r, 1.0);
    }

    #[test]
    fn tolerance_math() {
        assert_eq!(relaxed_tolerance(0.0, 128), 0);
        assert_eq!(relaxed_tolerance(0.5, 128), 64);
        assert_eq!(relaxed_tolerance(0.1, 2048), 205);
    }

    #[test]
    #[should_panic(expected = "query location out of range")]
    fn out_of_range_query_panics() {
        let p = profile_with_indices(vec![0, 1]);
        let _ = embedded_recall(&p, 0, &[10], &[0], 0);
    }
}

//! Nearest-neighbour classification on matrix-profile indices and its
//! F-score (§VI-A, Fig. 8/9).
//!
//! The classifier is the paper's: a query segment takes the label of its
//! best-matching reference segment (the matrix-profile index at full
//! dimensionality). The F-score is the macro-averaged harmonic mean of
//! per-class precision and recall (Tharwat [19]).

use mdmp_core::MatrixProfile;
use std::collections::BTreeMap;

/// Classify every query segment by the label of its matched reference
/// segment at profile dimension `k`. Unset indices map to `None`.
///
/// `ref_labels` holds one label per reference **sample**; a segment takes
/// the label at its start position.
pub fn nn_classify<L: Copy>(profile: &MatrixProfile, k: usize, ref_labels: &[L]) -> Vec<Option<L>> {
    assert!(k < profile.dims(), "dimension out of range");
    profile
        .index_dim(k)
        .iter()
        .map(|&i| {
            if i < 0 {
                None
            } else {
                let i = i as usize;
                assert!(i < ref_labels.len(), "index {i} beyond reference labels");
                Some(ref_labels[i])
            }
        })
        .collect()
}

/// Per-class counts and derived scores of a classification run.
#[derive(Debug, Clone)]
pub struct ClassificationReport<L: Ord + Copy> {
    per_class: BTreeMap<L, ClassCounts>,
    confusion: BTreeMap<(L, L), usize>,
    misses: BTreeMap<L, usize>,
    correct: usize,
    total: usize,
}

#[derive(Debug, Clone, Copy, Default)]
struct ClassCounts {
    tp: usize,
    fp: usize,
    fn_: usize,
}

impl<L: Ord + Copy> ClassificationReport<L> {
    /// Build a report from predictions and ground truth (`None` predictions
    /// count as wrong for the true class).
    ///
    /// # Panics
    /// Panics on length mismatch or empty input.
    pub fn new(predicted: &[Option<L>], truth: &[L]) -> ClassificationReport<L> {
        assert_eq!(predicted.len(), truth.len(), "length mismatch");
        assert!(!truth.is_empty(), "empty classification");
        let mut per_class: BTreeMap<L, ClassCounts> = BTreeMap::new();
        let mut confusion: BTreeMap<(L, L), usize> = BTreeMap::new();
        let mut misses: BTreeMap<L, usize> = BTreeMap::new();
        let mut correct = 0usize;
        for (&p, &t) in predicted.iter().zip(truth) {
            match p {
                Some(p) if p == t => {
                    per_class.entry(t).or_default().tp += 1;
                    *confusion.entry((t, p)).or_default() += 1;
                    correct += 1;
                }
                Some(p) => {
                    per_class.entry(t).or_default().fn_ += 1;
                    per_class.entry(p).or_default().fp += 1;
                    *confusion.entry((t, p)).or_default() += 1;
                }
                None => {
                    per_class.entry(t).or_default().fn_ += 1;
                    *misses.entry(t).or_default() += 1;
                }
            }
        }
        ClassificationReport {
            per_class,
            confusion,
            misses,
            correct,
            total: truth.len(),
        }
    }

    /// Confusion count: how often `truth` was predicted as `predicted`.
    pub fn confusion(&self, truth: L, predicted: L) -> usize {
        self.confusion
            .get(&(truth, predicted))
            .copied()
            .unwrap_or(0)
    }

    /// How often `truth` received no prediction at all (unset index).
    pub fn missed(&self, truth: L) -> usize {
        self.misses.get(&truth).copied().unwrap_or(0)
    }

    /// Overall accuracy (fraction of correct predictions).
    pub fn accuracy(&self) -> f64 {
        self.correct as f64 / self.total as f64
    }

    /// Precision of one class (`tp / (tp + fp)`; 0 when never predicted).
    pub fn precision(&self, class: L) -> f64 {
        let c = self.counts(class);
        if c.tp + c.fp == 0 {
            0.0
        } else {
            c.tp as f64 / (c.tp + c.fp) as f64
        }
    }

    /// Recall of one class (`tp / (tp + fn)`; 0 when absent from truth).
    pub fn recall(&self, class: L) -> f64 {
        let c = self.counts(class);
        if c.tp + c.fn_ == 0 {
            0.0
        } else {
            c.tp as f64 / (c.tp + c.fn_) as f64
        }
    }

    /// Per-class F1 (harmonic mean of precision and recall).
    pub fn f1(&self, class: L) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        // float-eq-ok: exact-zero guard — both terms are nonnegative, so
        // the sum is 0.0 only when both are true zeros (0/0 protection).
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Macro-averaged F-score over the classes present in the ground truth.
    pub fn macro_f1(&self) -> f64 {
        let classes: Vec<L> = self
            .per_class
            .iter()
            .filter(|(_, c)| c.tp + c.fn_ > 0)
            .map(|(&l, _)| l)
            .collect();
        if classes.is_empty() {
            return 0.0;
        }
        classes.iter().map(|&l| self.f1(l)).sum::<f64>() / classes.len() as f64
    }

    /// All classes seen (truth or predictions), sorted.
    pub fn classes(&self) -> Vec<L> {
        self.per_class.keys().copied().collect()
    }

    fn counts(&self, class: L) -> ClassCounts {
        self.per_class.get(&class).copied().unwrap_or_default()
    }
}

impl<L: Ord + Copy + std::fmt::Debug> std::fmt::Display for ClassificationReport<L> {
    /// Render the confusion matrix (rows = truth, columns = predicted).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let classes = self.classes();
        write!(f, "{:>12}", "truth\\pred")?;
        for c in &classes {
            write!(f, " {:>10}", format!("{c:?}"))?;
        }
        writeln!(f, " {:>10}", "(none)")?;
        for t in &classes {
            write!(f, "{:>12}", format!("{t:?}"))?;
            for p in &classes {
                write!(f, " {:>10}", self.confusion(*t, *p))?;
            }
            writeln!(f, " {:>10}", self.missed(*t))?;
        }
        writeln!(
            f,
            "accuracy {:.3}, macro-F1 {:.3} over {} samples",
            self.accuracy(),
            self.macro_f1(),
            self.total
        )
    }
}

/// Convenience: the macro F-score of predictions against ground truth —
/// the `F_classification` metric of Fig. 9.
pub fn f_score<L: Ord + Copy>(predicted: &[Option<L>], truth: &[L]) -> f64 {
    ClassificationReport::new(predicted, truth).macro_f1()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classification() {
        let truth = vec![1u8, 2, 1, 3];
        let pred: Vec<Option<u8>> = truth.iter().map(|&t| Some(t)).collect();
        let report = ClassificationReport::new(&pred, &truth);
        assert_eq!(report.accuracy(), 1.0);
        assert_eq!(report.macro_f1(), 1.0);
        assert_eq!(report.precision(1), 1.0);
        assert_eq!(report.recall(3), 1.0);
    }

    #[test]
    fn known_confusion() {
        // truth:  a a a b b
        // pred:   a a b b a
        let truth = vec!['a', 'a', 'a', 'b', 'b'];
        let pred = vec![Some('a'), Some('a'), Some('b'), Some('b'), Some('a')];
        let r = ClassificationReport::new(&pred, &truth);
        assert!((r.accuracy() - 0.6).abs() < 1e-12);
        // a: tp=2, fp=1, fn=1 -> p = 2/3, r = 2/3, f1 = 2/3
        assert!((r.precision('a') - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.recall('a') - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.f1('a') - 2.0 / 3.0).abs() < 1e-12);
        // b: tp=1, fp=1, fn=1 -> f1 = 0.5
        assert!((r.f1('b') - 0.5).abs() < 1e-12);
        assert!((r.macro_f1() - (2.0 / 3.0 + 0.5) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn confusion_matrix_counts_and_renders() {
        let truth = vec!['a', 'a', 'a', 'b', 'b'];
        let pred = vec![Some('a'), Some('a'), Some('b'), Some('b'), None];
        let r = ClassificationReport::new(&pred, &truth);
        assert_eq!(r.confusion('a', 'a'), 2);
        assert_eq!(r.confusion('a', 'b'), 1);
        assert_eq!(r.confusion('b', 'b'), 1);
        assert_eq!(r.confusion('b', 'a'), 0);
        assert_eq!(r.missed('b'), 1);
        assert_eq!(r.missed('a'), 0);
        let rendered = r.to_string();
        assert!(rendered.contains("accuracy"));
        assert!(rendered.contains("'a'"));
    }

    #[test]
    fn none_predictions_count_as_misses() {
        let truth = vec![1u8, 1];
        let pred = vec![Some(1u8), None];
        let r = ClassificationReport::new(&pred, &truth);
        assert_eq!(r.accuracy(), 0.5);
        assert_eq!(r.recall(1), 0.5);
        assert_eq!(r.precision(1), 1.0, "no false positives for class 1");
    }

    #[test]
    fn predicted_only_classes_do_not_enter_macro_f1() {
        let truth = vec![1u8, 1];
        let pred = vec![Some(2u8), Some(1)];
        let r = ClassificationReport::new(&pred, &truth);
        // Class 2 has no truth instances: excluded from the macro average.
        let f1_1 = r.f1(1);
        assert!((r.macro_f1() - f1_1).abs() < 1e-12);
    }

    #[test]
    fn nn_classifier_maps_indices_to_labels() {
        let profile = MatrixProfile::from_raw(vec![0.1, 0.2, 0.3], vec![0, 5, -1], 3, 1);
        let labels = vec!['x', 'x', 'y', 'y', 'y', 'z'];
        let pred = nn_classify(&profile, 0, &labels);
        assert_eq!(pred, vec![Some('x'), Some('z'), None]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = ClassificationReport::new(&[Some(1u8)], &[1u8, 2]);
    }
}

//! # mdmp-metrics
//!
//! The accuracy metrics of the paper's evaluation (§V-A):
//!
//! **Numerical accuracy** — comparing a reduced-precision result to the FP64
//! reference:
//! * [`recall_rate`] — fraction of matching matrix-profile indices (R);
//! * [`relative_accuracy`] — `A = 1 − E` with `E` the relative discrepancy
//!   of the profile values.
//!
//! **Practical accuracy** — task-level quality regardless of numerical
//! differences:
//! * [`embedded_recall`] — recall of embedded-motif detection
//!   (R_embedded), with a tolerance parameter that generalizes to the
//!   relaxed variant (R^r_embedded, tolerance = `r · m`);
//! * [`classification`] — nearest-neighbour classification on matrix-profile
//!   indices with per-class precision/recall and (macro) F-score.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod classification;
pub mod numerical;
pub mod practical;

pub use classification::{f_score, nn_classify, ClassificationReport};
pub use numerical::{recall_rate, relative_accuracy, relative_error};
pub use practical::{embedded_recall, relaxed_tolerance};

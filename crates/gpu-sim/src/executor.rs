//! Multi-device system: owns per-device timelines, memory trackers and cost
//! ledgers, and provides the round-robin tile assignment of Pseudocode 2.

use crate::cost::{CostLedger, KernelCost};
use crate::device::DeviceSpec;
use crate::memory::MemoryTracker;
use crate::stream::{DeviceTimeline, Op, OpRecord};
use crate::timing::TimingModel;

/// One simulated device with its timeline, memory and profiler state.
#[derive(Debug)]
pub struct SimDevice {
    /// The device's static description.
    pub spec: DeviceSpec,
    /// Timing model bound to the spec.
    pub model: TimingModel,
    /// Stream/engine timeline.
    pub timeline: DeviceTimeline,
    /// Device-memory budget tracker.
    pub memory: MemoryTracker,
    /// Per-kernel-class accounting.
    pub ledger: CostLedger,
}

impl SimDevice {
    /// Build a device from a spec.
    pub fn new(spec: DeviceSpec) -> SimDevice {
        let model = TimingModel::new(spec.clone());
        let timeline = DeviceTimeline::new(spec.max_streams);
        let memory = MemoryTracker::new(spec.mem_bytes);
        SimDevice {
            spec,
            model,
            timeline,
            memory,
            ledger: CostLedger::new(),
        }
    }

    /// Submit a kernel on a logical stream; records cost and returns the
    /// scheduled interval.
    pub fn submit_kernel(&mut self, stream: usize, cost: KernelCost) -> OpRecord {
        let record = self
            .timeline
            .submit(stream, &Op::Kernel { cost }, &self.model);
        self.ledger.record(&cost, record.duration());
        record
    }

    /// Submit a host→device or device→host transfer on a logical stream.
    pub fn submit_transfer(&mut self, stream: usize, bytes: u64, to_device: bool) -> OpRecord {
        let op = if to_device {
            Op::H2d { bytes }
        } else {
            Op::D2h { bytes }
        };
        self.timeline.submit(stream, &op, &self.model)
    }
}

/// A node with one or more simulated devices (e.g. 8×V100 for the DGX-1
/// experiments, 4×A100 for Raven).
///
/// # Threading contract
///
/// Submission mutates per-device timelines and stream clocks, so the
/// modelled schedule depends on submission *order*. The concurrent tile
/// pipeline in `mdmp-core` therefore keeps every `submit_*` call on one
/// coordinating thread, feeding it results from worker threads in tile
/// order — the system (and its devices) only ever needs to be `Send` so a
/// run can move across threads wholesale, never `&mut`-shared between
/// them. The assertions below pin `Send + Sync` for both types.
#[derive(Debug)]
pub struct GpuSystem {
    devices: Vec<SimDevice>,
}

// Compile-time proof that a run (device timelines included) may cross
// threads; fails to build if a non-Send/non-Sync field ever sneaks in.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SimDevice>();
    assert_send_sync::<GpuSystem>();
};

impl GpuSystem {
    /// A system of `n` identical devices.
    pub fn homogeneous(spec: DeviceSpec, n: usize) -> GpuSystem {
        assert!(n > 0, "need at least one device");
        GpuSystem {
            devices: (0..n).map(|_| SimDevice::new(spec.clone())).collect(),
        }
    }

    /// A system from explicit specs.
    pub fn new(specs: Vec<DeviceSpec>) -> GpuSystem {
        assert!(!specs.is_empty(), "need at least one device");
        GpuSystem {
            devices: specs.into_iter().map(SimDevice::new).collect(),
        }
    }

    /// A system assembled from already-built devices — the leasing path: a
    /// pool owner checks devices out, wraps them in a `GpuSystem` for one
    /// job, then reclaims them with [`GpuSystem::into_devices`].
    pub fn from_devices(devices: Vec<SimDevice>) -> GpuSystem {
        assert!(!devices.is_empty(), "need at least one device");
        GpuSystem { devices }
    }

    /// Disassemble the system back into its devices (ledgers and timelines
    /// intact), returning them to whatever pool leased them out.
    pub fn into_devices(self) -> Vec<SimDevice> {
        self.devices
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Access a device.
    pub fn device(&self, idx: usize) -> &SimDevice {
        &self.devices[idx]
    }

    /// Mutable access to a device.
    pub fn device_mut(&mut self, idx: usize) -> &mut SimDevice {
        &mut self.devices[idx]
    }

    /// The static Round-robin tile→device assignment of Pseudocode 2
    /// (`assign_tile`): tile `t` runs on device `t mod n_gpu`.
    pub fn assign_round_robin(n_tiles: usize, n_gpus: usize) -> Vec<usize> {
        (0..n_tiles).map(|t| t % n_gpus).collect()
    }

    /// Completion time of the whole system: the slowest device's makespan
    /// (devices run concurrently).
    pub fn makespan(&self) -> f64 {
        self.devices
            .iter()
            .map(|d| d.timeline.makespan())
            .fold(0.0, f64::max)
    }

    /// Aggregate ledger across all devices.
    pub fn total_ledger(&self) -> CostLedger {
        let mut total = CostLedger::new();
        for d in &self.devices {
            total.absorb(&d.ledger);
        }
        total
    }

    /// Reset all timelines and ledgers (fresh experiment, same hardware).
    pub fn reset(&mut self) {
        for d in &mut self.devices {
            d.timeline.reset();
            d.ledger = CostLedger::new();
            d.memory.free_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{KernelClass, KernelCost};
    use mdmp_precision::Format;

    fn one_second_kernel(spec: &DeviceSpec) -> KernelCost {
        let model = TimingModel::new(spec.clone());
        let bw = spec.mem_bandwidth * model.mem_efficiency(Format::Fp64);
        let mut c = KernelCost::new(KernelClass::DistCalc, Format::Fp64);
        c.bytes_read = bw as u64;
        c
    }

    #[test]
    fn round_robin_assignment_matches_pseudocode_2() {
        assert_eq!(GpuSystem::assign_round_robin(6, 2), vec![0, 1, 0, 1, 0, 1]);
        assert_eq!(GpuSystem::assign_round_robin(5, 3), vec![0, 1, 2, 0, 1]);
        // 16 tiles on 3 GPUs: device 0 gets 6 tiles, the imbalance behind
        // the paper's odd-GPU-count efficiency dip.
        let a = GpuSystem::assign_round_robin(16, 3);
        let count0 = a.iter().filter(|&&d| d == 0).count();
        assert_eq!(count0, 6);
    }

    #[test]
    fn devices_run_concurrently() {
        let spec = DeviceSpec::a100();
        let k = one_second_kernel(&spec);
        let mut sys = GpuSystem::homogeneous(spec, 4);
        // 8 tiles round-robin on 4 devices: 2 kernels each, makespan ~2 s.
        for (tile, dev) in GpuSystem::assign_round_robin(8, 4).into_iter().enumerate() {
            sys.device_mut(dev).submit_kernel(tile, k);
        }
        assert!((sys.makespan() - 2.0).abs() < 0.05, "{}", sys.makespan());
        // Serialized total across devices is ~8 s.
        assert!((sys.total_ledger().total_seconds() - 8.0).abs() < 0.05);
    }

    #[test]
    fn imbalanced_assignment_shows_in_makespan() {
        let spec = DeviceSpec::a100();
        let k = one_second_kernel(&spec);
        let mut sys = GpuSystem::homogeneous(spec, 3);
        for (tile, dev) in GpuSystem::assign_round_robin(16, 3).into_iter().enumerate() {
            sys.device_mut(dev).submit_kernel(tile, k);
        }
        // Device 0 has 6 tiles -> makespan ~6 s; perfect split would be 5.33.
        assert!((sys.makespan() - 6.0).abs() < 0.05);
        let efficiency = 16.0 / (3.0 * sys.makespan());
        assert!((efficiency - 0.889).abs() < 0.02);
    }

    #[test]
    fn reset_restores_fresh_state() {
        let spec = DeviceSpec::a100();
        let k = one_second_kernel(&spec);
        let mut sys = GpuSystem::homogeneous(spec, 1);
        sys.device_mut(0).submit_kernel(0, k);
        let _ = sys.device_mut(0).memory.alloc(128).unwrap();
        sys.reset();
        assert_eq!(sys.makespan(), 0.0);
        assert_eq!(sys.total_ledger().total_seconds(), 0.0);
        assert_eq!(sys.device(0).memory.in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_system_panics() {
        let _ = GpuSystem::new(vec![]);
    }

    #[test]
    fn lease_round_trip_preserves_device_state() {
        let spec = DeviceSpec::a100();
        let k = one_second_kernel(&spec);
        let mut devices: Vec<SimDevice> = (0..2).map(|_| SimDevice::new(spec.clone())).collect();
        devices[0].submit_kernel(0, k);
        let sys = GpuSystem::from_devices(devices);
        assert_eq!(sys.device_count(), 2);
        assert!((sys.makespan() - 1.0).abs() < 0.05);
        let devices = sys.into_devices();
        assert_eq!(devices.len(), 2);
        assert!((devices[0].timeline.makespan() - 1.0).abs() < 0.05);
        assert_eq!(devices[1].timeline.makespan(), 0.0);
    }
}

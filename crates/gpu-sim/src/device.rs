//! Device specifications and kernel launch configurations.
//!
//! The presets reproduce the hardware of the paper's evaluation (§V-A):
//!
//! * **V100** (DGX-1 at LRZ): 7.8 TFLOP/s FP64, 32 GB, 900 GB/s, 80 SMs;
//! * **A100** (Raven at MPCDF): 9.7 TFLOP/s FP64, 40 GB, 1555 GB/s, 108 SMs;
//! * **Skylake 16-core CPU** — the host the state-of-the-art (MP)^N baseline
//!   runs on, modelled with the same cost vocabulary so Fig. 6 can compare
//!   all three machines.

use mdmp_precision::Format;

/// Whether a [`DeviceSpec`] models a GPU or the CPU baseline machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceKind {
    /// A CUDA-capable GPU.
    Gpu,
    /// A multicore CPU (used for the (MP)^N baseline and the tile merge).
    Cpu,
}

/// Tensor-core throughput of a device, per MMA input format, plus the
/// shared-memory fragment-load bandwidth that feeds the units.
///
/// Peaks follow the vendor datasheets (dense, no sparsity): V100 supports
/// FP16 inputs only at ~112 TFLOP/s; A100 runs FP16 and BF16 at 312
/// TFLOP/s and TF32 at 156 TFLOP/s against 9.7 TFLOP/s FP64. The units
/// read their operands from shared-memory fragments (WMMA `load_matrix_sync`
/// / WGMMA descriptors), so a kernel that underfeeds fragments is bound by
/// `frag_bandwidth` rather than the MMA peak — the timing model charges
/// both and takes the max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcThroughput {
    /// Dense FP16-input MMA peak, FLOP/s.
    pub fp16_flops: f64,
    /// Dense BF16-input MMA peak, FLOP/s (`None` before Ampere).
    pub bf16_flops: Option<f64>,
    /// Dense TF32-input MMA peak, FLOP/s (`None` before Ampere).
    pub tf32_flops: Option<f64>,
    /// Aggregate shared-memory fragment-load bandwidth in bytes/second
    /// (SMs × smem bytes/clock × clock).
    pub frag_bandwidth: f64,
}

/// Static description of one compute device.
#[derive(Debug, Clone)]
pub struct DeviceSpec {
    /// Marketing name, e.g. "NVIDIA A100".
    pub name: &'static str,
    /// GPU or CPU.
    pub kind: DeviceKind,
    /// Number of streaming multiprocessors (cores for a CPU).
    pub sms: u32,
    /// Resident warps per SM used by the paper's launch configurations.
    pub warps_per_sm: u32,
    /// Threads per warp.
    pub warp_size: u32,
    /// Device memory capacity in bytes.
    pub mem_bytes: u64,
    /// Peak DRAM bandwidth in bytes/second.
    pub mem_bandwidth: f64,
    /// Peak FP64 throughput in FLOP/s.
    pub fp64_flops: f64,
    /// Sustained simple-operation rate of the SMs (compare-exchange, integer
    /// and address arithmetic) in op/s — governs the shared-memory-resident
    /// Bitonic sort + scan kernel.
    pub sm_op_rate: f64,
    /// Fixed cost of one kernel launch in seconds.
    pub launch_overhead: f64,
    /// Fixed cost of one coarse-grained group barrier in seconds
    /// (cooperative-groups sync in the sort/scan kernel).
    pub barrier_overhead: f64,
    /// Host→device copy bandwidth in bytes/second (PCIe / NVLink).
    pub h2d_bandwidth: f64,
    /// Device→host copy bandwidth in bytes/second.
    pub d2h_bandwidth: f64,
    /// Maximum concurrently usable streams (the implementation caps at 16,
    /// §IV).
    pub max_streams: usize,
    /// Fraction of peak DRAM bandwidth the FP64 matrix-profile kernels
    /// achieve on this device — the paper reports ~80% DRAM throughput for
    /// `dist_calc`/`update_mat_prof` on A100 (§V-C); V100 saturates its
    /// narrower HBM slightly better; the CPU baseline achieves far less on
    /// this cache-unfriendly workload (calibrated against the paper's 54×
    /// A100-vs-CPU headline).
    pub mem_eff_fp64: f64,
    /// Tensor-core unit throughput, `None` when the device has none.
    pub tc: Option<TcThroughput>,
}

impl DeviceSpec {
    /// NVIDIA Tesla V100 (SXM2 32 GB) as in the DGX-1 system of §V-A.
    pub fn v100() -> DeviceSpec {
        DeviceSpec {
            name: "NVIDIA V100",
            kind: DeviceKind::Gpu,
            sms: 80,
            warps_per_sm: 64,
            warp_size: 32,
            mem_bytes: 32 * (1 << 30),
            mem_bandwidth: 900.0e9,
            fp64_flops: 7.8e12,
            sm_op_rate: 11.0e12,
            launch_overhead: 5.0e-6,
            barrier_overhead: 0.35e-6,
            h2d_bandwidth: 12.0e9,
            d2h_bandwidth: 12.0e9,
            max_streams: 16,
            mem_eff_fp64: 0.92,
            // Volta: first-generation tensor cores, FP16 inputs only.
            // 80 SMs × 128 B/clock × 1.53 GHz of shared-memory fragment feed.
            tc: Some(TcThroughput {
                fp16_flops: 112.0e12,
                bf16_flops: None,
                tf32_flops: None,
                frag_bandwidth: 15.7e12,
            }),
        }
    }

    /// NVIDIA Tesla A100 (SXM4 40 GB) as in the Raven system of §V-A.
    pub fn a100() -> DeviceSpec {
        DeviceSpec {
            name: "NVIDIA A100",
            kind: DeviceKind::Gpu,
            sms: 108,
            warps_per_sm: 64,
            warp_size: 32,
            mem_bytes: 40 * (1 << 30),
            mem_bandwidth: 1555.0e9,
            fp64_flops: 9.7e12,
            sm_op_rate: 14.0e12,
            launch_overhead: 4.0e-6,
            barrier_overhead: 0.3e-6,
            h2d_bandwidth: 25.0e9,
            d2h_bandwidth: 25.0e9,
            max_streams: 16,
            mem_eff_fp64: 0.82,
            // Ampere third-generation tensor cores (dense, no sparsity).
            // 108 SMs × 128 B/clock × 1.41 GHz of fragment feed.
            tc: Some(TcThroughput {
                fp16_flops: 312.0e12,
                bf16_flops: Some(312.0e12),
                tf32_flops: Some(156.0e12),
                frag_bandwidth: 19.5e12,
            }),
        }
    }

    /// The 16-core Intel Skylake node that runs the (MP)^N CPU baseline.
    ///
    /// `mem_bandwidth` is the 6-channel DDR4-2666 peak; the (low) efficiency
    /// the baseline achieves on this cache-unfriendly workload is part of
    /// the [`crate::TimingModel`] calibration, not of the spec.
    pub fn skylake_16c() -> DeviceSpec {
        DeviceSpec {
            name: "Intel 16-core CPU",
            kind: DeviceKind::Cpu,
            sms: 16,
            warps_per_sm: 2,
            warp_size: 8, // AVX-512 f64 lanes
            mem_bytes: 192 * (1 << 30),
            mem_bandwidth: 128.0e9,
            fp64_flops: 1.18e12, // 16 cores × 2.3 GHz × 32 DP FLOP/cycle
            sm_op_rate: 0.30e12,
            launch_overhead: 0.0,
            barrier_overhead: 2.0e-6,
            h2d_bandwidth: f64::INFINITY,
            d2h_bandwidth: f64::INFINITY,
            max_streams: 1,
            mem_eff_fp64: 0.14,
            tc: None,
        }
    }

    /// Peak FLOP/s for a given format: the vector pipelines run FP32 at 2×
    /// and FP16/BF16 at 4× the FP64 rate (TF32 is modelled at the FP32 rate
    /// since the paper's kernels do not use tensor cores). CPUs get 2× for
    /// FP32 and no speedup for 16-bit formats.
    pub fn peak_flops(&self, format: Format) -> f64 {
        match self.kind {
            DeviceKind::Gpu => self.fp64_flops * format.flops_ratio_vs_fp64(),
            DeviceKind::Cpu => match format {
                Format::Fp64 => self.fp64_flops,
                _ => self.fp64_flops * 2.0,
            },
        }
    }

    /// Tensor-core peak FLOP/s for an MMA *input* format, `None` when this
    /// device (or this device's generation) cannot run that format on its
    /// tensor cores — the caller falls back to the vector pipelines.
    pub fn tc_flops(&self, input: Format) -> Option<f64> {
        let tc = self.tc.as_ref()?;
        match input {
            Format::Fp16 => Some(tc.fp16_flops),
            Format::Bf16 => tc.bf16_flops,
            Format::Tf32 => tc.tf32_flops,
            _ => None,
        }
    }

    /// Total simultaneously resident threads at the paper's tuned launch
    /// configuration (163,840 on V100; 221,184 on A100 — §V-A).
    pub fn resident_threads(&self) -> usize {
        (self.sms * self.warps_per_sm * self.warp_size) as usize
    }

    /// The kernel launch configuration the paper tunes for this device
    /// (§IV: "on V100 we use 64 as grid size and 2560 as block size; on A100
    /// we use 64 as grid size and 3456 as block size").
    pub fn tuned_launch(&self) -> LaunchConfig {
        match self.name {
            "NVIDIA V100" => LaunchConfig::new(64, 2560),
            "NVIDIA A100" => LaunchConfig::new(64, 3456),
            _ => {
                let threads = self.resident_threads();
                LaunchConfig::new(64, threads.div_ceil(64))
            }
        }
    }
}

/// A kernel launch configuration: `<<<grid, block>>>` in CUDA notation.
///
/// Grid-stride loops make the kernels correct for *any* configuration
/// (§III-A "Grid-Stride Loops"); this struct mostly feeds the performance
/// model and the thread-assignment helpers in [`crate::grid`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of blocks.
    pub grid_size: usize,
    /// Threads per block.
    pub block_size: usize,
}

impl LaunchConfig {
    /// Create a launch configuration.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(grid_size: usize, block_size: usize) -> LaunchConfig {
        assert!(grid_size > 0, "grid size must be positive");
        assert!(block_size > 0, "block size must be positive");
        LaunchConfig {
            grid_size,
            block_size,
        }
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> usize {
        self.grid_size * self.block_size
    }

    /// Number of grid-stride iterations a single thread performs to cover
    /// `n` items.
    pub fn iterations_per_thread(&self, n: usize) -> usize {
        n.div_ceil(self.total_threads())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_thread_counts() {
        // §V-A: 163,840 threads on V100; 221,184 on A100.
        assert_eq!(DeviceSpec::v100().resident_threads(), 163_840);
        assert_eq!(DeviceSpec::a100().resident_threads(), 221_184);
        assert_eq!(DeviceSpec::v100().tuned_launch().total_threads(), 163_840);
        assert_eq!(DeviceSpec::a100().tuned_launch().total_threads(), 221_184);
    }

    #[test]
    fn paper_device_headline_specs() {
        let v = DeviceSpec::v100();
        assert_eq!(v.sms, 80);
        assert_eq!(v.mem_bytes, 32 << 30);
        assert!((v.mem_bandwidth - 900.0e9).abs() < 1.0);
        let a = DeviceSpec::a100();
        assert_eq!(a.sms, 108);
        assert_eq!(a.mem_bytes, 40 << 30);
        assert!((a.fp64_flops - 9.7e12).abs() < 1.0);
    }

    #[test]
    fn format_flops_scaling() {
        let a = DeviceSpec::a100();
        assert_eq!(a.peak_flops(Format::Fp32), 2.0 * a.fp64_flops);
        assert_eq!(a.peak_flops(Format::Fp16), 4.0 * a.fp64_flops);
        let c = DeviceSpec::skylake_16c();
        assert_eq!(c.peak_flops(Format::Fp16), 2.0 * c.fp64_flops);
    }

    #[test]
    fn tensor_core_generations() {
        let a = DeviceSpec::a100();
        assert_eq!(a.tc_flops(Format::Fp16), Some(312.0e12));
        assert_eq!(a.tc_flops(Format::Bf16), Some(312.0e12));
        assert_eq!(a.tc_flops(Format::Tf32), Some(156.0e12));
        assert_eq!(a.tc_flops(Format::Fp64), None);
        let v = DeviceSpec::v100();
        assert_eq!(v.tc_flops(Format::Fp16), Some(112.0e12));
        assert_eq!(v.tc_flops(Format::Bf16), None, "Volta has no BF16 MMA");
        assert_eq!(v.tc_flops(Format::Tf32), None, "Volta has no TF32 MMA");
        assert_eq!(DeviceSpec::skylake_16c().tc_flops(Format::Fp16), None);
    }

    #[test]
    fn grid_stride_iteration_math() {
        let cfg = LaunchConfig::new(64, 3456);
        assert_eq!(cfg.iterations_per_thread(221_184), 1);
        assert_eq!(cfg.iterations_per_thread(221_185), 2);
        assert_eq!(cfg.iterations_per_thread(1), 1);
    }

    #[test]
    #[should_panic(expected = "grid size must be positive")]
    fn zero_grid_panics() {
        let _ = LaunchConfig::new(0, 128);
    }
}

//! Simulated tensor-core matrix-multiply-accumulate (MMA) unit.
//!
//! Models the numerical contract of NVIDIA tensor cores as established by
//! Khattak & Mikaitis ("Numerical behavior of NVIDIA tensor cores", Part I)
//! and used by the mixed-precision Euclidean-distance GEMM literature:
//!
//! 1. **Operand rounding.** The A/B multiply operands are rounded to the
//!    unit's input format (FP16, BF16, or TF32) with round-to-nearest-even
//!    *per operation* — the surrounding kernel keeps its data in FP32.
//! 2. **Exact products.** Products of two rounded operands are exact in
//!    FP32: every supported input format has ≤ 11 significand bits, so a
//!    product needs ≤ 22 bits — under binary32's 24.
//! 3. **Chunked FP32 accumulation.** The hardware dot-product unit sums a
//!    fixed-width chunk of products into an FP32 accumulator in a fixed
//!    order, then adds the chunk sum to the running FP32 accumulator. The
//!    chunk width is a hardware constant (4 on Volta, 8/16 on Ampere
//!    depending on the instruction shape); we expose it as
//!    [`MmaConfig::chunk_k`] so its effect on rounding is testable.
//!
//! The simulation is *functional*: it produces the exact bit pattern such a
//! unit would produce for a given chunk width and operand order, which is
//! what the reproducibility and accuracy experiments need. Throughput is
//! modelled separately by [`crate::device::TcThroughput`] and the timing
//! model's fragment-traffic term (operands are staged through shared-memory
//! fragments before they reach the unit, as in WMMA/WGMMA).

use mdmp_precision::{Bf16, Format, Half, Tf32};

/// Chunk widths the simulated unit supports (hardware dot-product sizes).
pub const MMA_CHUNK_SIZES: [usize; 3] = [4, 8, 16];

/// Configuration of one simulated MMA issue: input format + accumulator
/// chunk width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmaConfig {
    /// Format the A/B operands are rounded to before multiplying.
    pub input: Format,
    /// Products summed per FP32 accumulator chunk (4, 8, or 16).
    pub chunk_k: usize,
}

impl MmaConfig {
    /// Config with the format's default hardware chunk width.
    ///
    /// # Panics
    /// Panics if `input` is not a tensor-core input format.
    pub fn new(input: Format) -> MmaConfig {
        MmaConfig {
            input,
            chunk_k: default_chunk_k(input),
        }
    }

    /// Override the chunk width.
    ///
    /// # Panics
    /// Panics if `chunk_k` is not one of [`MMA_CHUNK_SIZES`].
    pub fn with_chunk_k(mut self, chunk_k: usize) -> MmaConfig {
        assert!(
            MMA_CHUNK_SIZES.contains(&chunk_k),
            "MMA chunk width must be one of {MMA_CHUNK_SIZES:?}, got {chunk_k}"
        );
        self.chunk_k = chunk_k;
        self
    }
}

/// The default hardware accumulator chunk width for an input format:
/// FP16/BF16 MMA shapes accumulate 8 products per chunk on Ampere, TF32
/// shapes 4 (half the k extent, same instruction).
///
/// # Panics
/// Panics if `input` is not a tensor-core input format.
pub fn default_chunk_k(input: Format) -> usize {
    match input {
        Format::Fp16 | Format::Bf16 => 8,
        Format::Tf32 => 4,
        other => panic!("{other} is not a tensor-core input format"),
    }
}

/// Round a value (carried in f64) to the MMA input format and back.
///
/// Every supported input format embeds exactly in binary32 (and hence in
/// f64), so the round trip loses nothing beyond the format's own rounding.
///
/// # Panics
/// Panics if `fmt` is not a tensor-core input format.
#[inline]
pub fn round_operand(x: f64, fmt: Format) -> f64 {
    match fmt {
        Format::Fp16 => Half::from_f64(x).to_f64(),
        Format::Bf16 => Bf16::from_f64(x).to_f64(),
        Format::Tf32 => Tf32::from_f64(x).to_f64(),
        other => panic!("{other} is not a tensor-core input format"),
    }
}

/// One simulated MMA dot product: `base + Σ round(a[i]) · round(b[i])`,
/// with FP32 chunked accumulation.
///
/// `base` and the result are FP32 values carried exactly in f64 (the
/// accumulator register). Chunk boundaries fall at multiples of
/// `cfg.chunk_k` from the start of `a`, so the association order — and
/// therefore the exact result bits — is a deterministic function of
/// `(operands, input format, chunk_k)` alone.
///
/// # Panics
/// Panics if `a` and `b` differ in length.
#[inline]
pub fn mma_dot(base: f64, a: &[f64], b: &[f64], cfg: &MmaConfig) -> f64 {
    assert_eq!(a.len(), b.len(), "MMA operand vectors must match");
    let mut acc = base as f32;
    for (ca, cb) in a.chunks(cfg.chunk_k).zip(b.chunks(cfg.chunk_k)) {
        let mut chunk = 0.0f32;
        for (&x, &y) in ca.iter().zip(cb.iter()) {
            // Product of two ≤11-bit significands is exact in binary32.
            chunk += (round_operand(x, cfg.input) as f32) * (round_operand(y, cfg.input) as f32);
        }
        acc += chunk;
    }
    acc as f64
}

/// Analytic forward-error bound for [`mma_dot`] against the exact real
/// dot product: operand rounding contributes `≤ (2ε_in + ε_in²)·Σ|a·b|`,
/// and the FP32 chunked summation of `n` products contributes at most
/// `(n + ⌈n/k⌉)·ε₃₂ / (1 − n·ε₃₂)` relative to the magnitude sum (standard
/// recursive-summation bound over the two-level tree; `ε₃₂ = 2⁻²⁴` unit
/// roundoff). The caller supplies `mag = Σ|a[i]·b[i]| + |base|`.
pub fn mma_error_bound(n: usize, mag: f64, cfg: &MmaConfig) -> f64 {
    let eps_in = cfg.input.epsilon() / 2.0; // Format::epsilon is 2u, we need u
    let eps32 = 2f64.powi(-24);
    let adds = (n + n.div_ceil(cfg.chunk_k) + 1) as f64;
    let input_term = (2.0 * eps_in + eps_in * eps_in) * mag;
    let sum_term = adds * eps32 / (1.0 - adds * eps32) * mag;
    input_term + sum_term
}

#[cfg(test)]
mod tests {
    use super::*;

    fn panel(seed: u64, n: usize) -> (Vec<f64>, Vec<f64>) {
        // Small deterministic LCG so the test needs no external RNG.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let a: Vec<f64> = (0..n).map(|_| next()).collect();
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        (a, b)
    }

    #[test]
    fn exact_on_representable_operands() {
        // Powers of two are exact in every input format; products and sums
        // stay exact in FP32, so the MMA result must equal the f64 dot.
        let a = [1.0, 0.5, 2.0, 0.25, 4.0, 0.125, 8.0, 1.0];
        let b = [2.0, 2.0, 0.5, 4.0, 0.25, 8.0, 0.125, 1.0];
        let exact: f64 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
        for fmt in [Format::Fp16, Format::Bf16, Format::Tf32] {
            let got = mma_dot(0.0, &a, &b, &MmaConfig::new(fmt));
            assert_eq!(got, exact, "{fmt} MMA drifted on exact inputs");
        }
    }

    #[test]
    fn within_analytic_bound() {
        for seed in 0..32u64 {
            let n = 4 + (seed as usize % 29);
            let (a, b) = panel(seed, n);
            let exact: f64 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
            let mag: f64 = a.iter().zip(b.iter()).map(|(x, y)| (x * y).abs()).sum();
            for fmt in [Format::Fp16, Format::Bf16, Format::Tf32] {
                for k in MMA_CHUNK_SIZES {
                    let cfg = MmaConfig::new(fmt).with_chunk_k(k);
                    let got = mma_dot(0.0, &a, &b, &cfg);
                    let bound = mma_error_bound(n, mag, &cfg);
                    assert!(
                        (got - exact).abs() <= bound,
                        "{fmt} k={k} n={n}: |{got} - {exact}| > {bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn chunk_width_changes_bits_deterministically() {
        let (a, b) = panel(7, 48);
        let cfg8 = MmaConfig::new(Format::Fp16);
        let cfg4 = cfg8.with_chunk_k(4);
        let r8a = mma_dot(1.0, &a, &b, &cfg8);
        let r8b = mma_dot(1.0, &a, &b, &cfg8);
        let r4 = mma_dot(1.0, &a, &b, &cfg4);
        // Same config → identical bits; different chunking → a different
        // association order that is allowed (and here does) change them.
        assert_eq!(r8a.to_bits(), r8b.to_bits());
        assert_ne!(r8a.to_bits(), r4.to_bits());
    }

    #[test]
    #[should_panic(expected = "chunk width")]
    fn rejects_bad_chunk() {
        let _ = MmaConfig::new(Format::Fp16).with_chunk_k(5);
    }

    #[test]
    fn default_chunks_match_hardware_shapes() {
        assert_eq!(default_chunk_k(Format::Fp16), 8);
        assert_eq!(default_chunk_k(Format::Bf16), 8);
        assert_eq!(default_chunk_k(Format::Tf32), 4);
    }
}

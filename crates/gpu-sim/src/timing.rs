//! The calibrated roofline timing model.
//!
//! A [`KernelCost`] is converted to seconds as
//!
//! ```text
//! t = max( bytes / (BW_peak · eff_mem(format)),
//!          flops / FLOPS_peak(format),
//!          smem_ops · op_cost(format) / sm_op_rate )
//!     + launches · t_launch + barriers · t_barrier
//! ```
//!
//! ## Calibration
//!
//! Constants are anchored to the quantitative data in the paper:
//!
//! * **eff_mem** — §V-C (Nsight): `dist_calc`/`update_mat_prof` sustain
//!   ~80% DRAM throughput in FP64, ~60% in FP32 and ~30–35% in the FP16
//!   family (reduced-precision kernels become latency-bound, which is why
//!   the overall FP16 speedup saturates at ~1.4× rather than 4×).
//! * **op_cost** — the sort kernel is L1/compute bound (>80% L1/TEX, ~70%
//!   SM) and nearly precision-independent ("the performance improvements in
//!   reduced precision modes is minimal" for `sort_&_incl_scan`).
//! * **barrier/launch overheads** (in [`DeviceSpec`]) and the CPU's
//!   `mem_eff_fp64` — set so the headline results hold: ~54× A100 vs CPU,
//!   ~42× V100 vs CPU in FP64, and ~1.4–1.5× FP16 vs FP64 on A100 at
//!   (n=2¹⁶, d=2⁶, m=2⁶).

#[cfg(test)]
use crate::cost::KernelClass;
use crate::cost::KernelCost;
use crate::device::{DeviceKind, DeviceSpec};
use mdmp_precision::Format;

/// Converts kernel costs to modelled seconds for one device.
#[derive(Debug, Clone)]
pub struct TimingModel {
    spec: DeviceSpec,
}

impl TimingModel {
    /// Build a model for a device.
    pub fn new(spec: DeviceSpec) -> TimingModel {
        TimingModel { spec }
    }

    /// The device this model describes.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Achieved fraction of peak DRAM bandwidth for a kernel of the given
    /// format (§V-C calibration; see module docs).
    pub fn mem_efficiency(&self, format: Format) -> f64 {
        let format_factor = match self.spec.kind {
            DeviceKind::Gpu => match format {
                Format::Fp64 => 1.0,
                Format::Fp32 | Format::Tf32 => 0.73,
                Format::Fp16 | Format::Bf16 => 0.43,
                // 8-bit kernels are even more latency-bound than FP16.
                Format::Fp8E4M3 | Format::Fp8E5M2 => 0.28,
            },
            // The CPU baseline runs FP64 only; no format derating.
            DeviceKind::Cpu => 1.0,
        };
        self.spec.mem_eff_fp64 * format_factor
    }

    /// Cost (in generic "op units") of one shared-memory compare-exchange or
    /// scan step in the sort kernel. Weakly precision-dependent: the kernel
    /// is dominated by addressing, predication and synchronization rather
    /// than by the width of the compared values.
    pub fn smem_op_cost(&self, format: Format) -> f64 {
        match self.spec.kind {
            DeviceKind::Gpu => match format {
                Format::Fp64 => 15.0,
                Format::Fp32 | Format::Tf32 => 8.0,
                Format::Fp16 | Format::Bf16 => 5.4,
                Format::Fp8E4M3 | Format::Fp8E5M2 => 5.0,
            },
            DeviceKind::Cpu => 6.0,
        }
    }

    /// FLOP and fragment-traffic terms of a kernel. When the cost is tagged
    /// with a tensor-core input format *and* this device's tensor cores
    /// support it, the FLOPs are charged against the MMA peak and the
    /// operand fragments against the shared-memory fragment bandwidth;
    /// otherwise the FLOPs fall back to the vector pipelines at the
    /// accumulator format's rate (a TF32-TC kernel on V100 runs as an
    /// ordinary FP32 kernel) and the fragment term vanishes.
    fn flop_and_frag_seconds(&self, cost: &KernelCost) -> (f64, f64) {
        if let Some(input) = cost.tc {
            if let Some(tc_peak) = self.spec.tc_flops(input) {
                let frag_bw = self
                    .spec
                    .tc
                    .as_ref()
                    .map(|tc| tc.frag_bandwidth)
                    .unwrap_or(f64::INFINITY);
                return (
                    cost.flops as f64 / tc_peak,
                    cost.frag_bytes as f64 / frag_bw,
                );
            }
        }
        (cost.flops as f64 / self.spec.peak_flops(cost.format), 0.0)
    }

    /// Modelled duration of a kernel execution (or an aggregate of many
    /// launches folded into one [`KernelCost`]).
    pub fn kernel_seconds(&self, cost: &KernelCost) -> f64 {
        let bw = self.spec.mem_bandwidth * self.mem_efficiency(cost.format);
        let mem_t = cost.bytes() as f64 / bw;
        let (flop_t, frag_t) = self.flop_and_frag_seconds(cost);
        let smem_t = cost.smem_ops as f64 * self.smem_op_cost(cost.format) / self.spec.sm_op_rate;
        let base = mem_t.max(flop_t).max(smem_t).max(frag_t);
        base + cost.launches as f64 * self.spec.launch_overhead
            + cost.barriers as f64 * self.spec.barrier_overhead
    }

    /// Modelled duration of a host↔device transfer.
    pub fn transfer_seconds(&self, bytes: u64, to_device: bool) -> f64 {
        let bw = if to_device {
            self.spec.h2d_bandwidth
        } else {
            self.spec.d2h_bandwidth
        };
        if bw.is_infinite() {
            0.0
        } else {
            // ~10 µs of fixed per-copy latency (driver + DMA setup).
            bytes as f64 / bw + 10.0e-6
        }
    }

    /// Which resource bounds the kernel under this model — the vocabulary of
    /// the paper's §V-C resource-utilization discussion.
    pub fn bounding_resource(&self, cost: &KernelCost) -> Resource {
        let bw = self.spec.mem_bandwidth * self.mem_efficiency(cost.format);
        let mem_t = cost.bytes() as f64 / bw;
        let (flop_t, frag_t) = self.flop_and_frag_seconds(cost);
        let smem_t = cost.smem_ops as f64 * self.smem_op_cost(cost.format) / self.spec.sm_op_rate;
        let overhead = cost.launches as f64 * self.spec.launch_overhead
            + cost.barriers as f64 * self.spec.barrier_overhead;
        // Fragment staging lives in shared memory, so a fragment-bound MMA
        // kernel is classified with the other shared-memory-bound kernels.
        let smem_t = smem_t.max(frag_t);
        let base = mem_t.max(flop_t).max(smem_t);
        if overhead > base {
            Resource::Synchronization
        } else if mem_t >= flop_t && mem_t >= smem_t {
            Resource::DramBandwidth
        } else if smem_t >= flop_t {
            Resource::SharedMemory
        } else {
            Resource::Compute
        }
    }
}

/// The resource that bounds a kernel (cf. §V-C "Resource Utilization").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// Device-memory bandwidth bound (dist_calc / update_mat_prof in FP64).
    DramBandwidth,
    /// Shared-memory / L1 throughput bound (the sort kernel's compare net).
    SharedMemory,
    /// Floating-point throughput bound.
    Compute,
    /// Dominated by launch + barrier overhead.
    Synchronization,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;

    fn dist_like(format: Format, n: u64, d: u64) -> KernelCost {
        let elems = n * n * d;
        let b = format.bytes() as u64;
        KernelCost {
            class: KernelClass::DistCalc,
            format,
            bytes_read: 2 * elems * b,
            bytes_written: elems * b,
            flops: 8 * elems,
            smem_ops: 0,
            launches: n,
            barriers: 0,
            tc: None,
            frag_bytes: 0,
        }
    }

    #[test]
    fn reduced_precision_is_faster_but_sublinear() {
        let model = TimingModel::new(DeviceSpec::a100());
        let t64 = model.kernel_seconds(&dist_like(Format::Fp64, 1 << 14, 64));
        let t32 = model.kernel_seconds(&dist_like(Format::Fp32, 1 << 14, 64));
        let t16 = model.kernel_seconds(&dist_like(Format::Fp16, 1 << 14, 64));
        assert!(t32 < t64);
        assert!(t16 < t32);
        // 4× fewer bytes must NOT give 4× speedup (efficiency derating).
        assert!(t64 / t16 < 3.0, "fp16 speedup {} should be < 3x", t64 / t16);
        assert!(t64 / t16 > 1.5);
    }

    #[test]
    fn a100_beats_v100_beats_cpu() {
        let c = dist_like(Format::Fp64, 1 << 14, 64);
        let ta = TimingModel::new(DeviceSpec::a100()).kernel_seconds(&c);
        let tv = TimingModel::new(DeviceSpec::v100()).kernel_seconds(&c);
        let tc = TimingModel::new(DeviceSpec::skylake_16c()).kernel_seconds(&c);
        assert!(ta < tv);
        assert!(tv < tc);
        assert!(tc / ta > 20.0, "CPU should be far slower: {}", tc / ta);
    }

    #[test]
    fn barriers_are_precision_independent_overhead() {
        let model = TimingModel::new(DeviceSpec::a100());
        let mut c64 = KernelCost::new(KernelClass::SortScan, Format::Fp64);
        c64.barriers = 1_000_000;
        let mut c16 = KernelCost::new(KernelClass::SortScan, Format::Fp16);
        c16.barriers = 1_000_000;
        let t64 = model.kernel_seconds(&c64);
        let t16 = model.kernel_seconds(&c16);
        assert!((t64 - t16).abs() < 1e-12);
        assert!((t64 - 0.3).abs() < 1e-9, "1M barriers at 0.3us = 0.3s");
    }

    #[test]
    fn bounding_resource_classification() {
        let model = TimingModel::new(DeviceSpec::a100());
        let c = dist_like(Format::Fp64, 1 << 14, 64);
        assert_eq!(model.bounding_resource(&c), Resource::DramBandwidth);

        let mut sort = KernelCost::new(KernelClass::SortScan, Format::Fp64);
        sort.smem_ops = 1 << 40;
        assert_eq!(model.bounding_resource(&sort), Resource::SharedMemory);

        let mut sync = KernelCost::new(KernelClass::SortScan, Format::Fp64);
        sync.barriers = 1 << 20;
        sync.smem_ops = 10;
        assert_eq!(model.bounding_resource(&sync), Resource::Synchronization);

        let mut comp = KernelCost::new(KernelClass::Precalc, Format::Fp64);
        comp.flops = 1 << 40;
        comp.bytes_read = 8;
        assert_eq!(model.bounding_resource(&comp), Resource::Compute);
    }

    #[test]
    fn tensor_core_flops_charged_against_mma_peak() {
        let model = TimingModel::new(DeviceSpec::a100());
        // Compute-heavy kernel: almost no DRAM traffic, all FLOPs.
        let mut c = KernelCost::new(KernelClass::DistCalc, Format::Fp32);
        c.flops = 1 << 44;
        c.bytes_read = 8;
        let vector_t = model.kernel_seconds(&c);
        c.tc = Some(Format::Fp16);
        let tc_t = model.kernel_seconds(&c);
        // FP32 vector peak 19.4 TF vs FP16-TC 312 TF ≈ 16×.
        let ratio = vector_t / tc_t;
        assert!(
            (ratio - 312.0 / 19.4).abs() < 0.5,
            "TC speedup {ratio} should match the spec ratio"
        );
        assert_eq!(model.bounding_resource(&c), Resource::Compute);
    }

    #[test]
    fn fragment_traffic_can_bound_an_mma_kernel() {
        let model = TimingModel::new(DeviceSpec::a100());
        let mut c = KernelCost::new(KernelClass::DistCalc, Format::Fp32);
        c.tc = Some(Format::Fp16);
        c.flops = 1 << 20;
        c.frag_bytes = 1 << 44; // grossly underfed fragments
        assert_eq!(model.bounding_resource(&c), Resource::SharedMemory);
        let starved = model.kernel_seconds(&c);
        c.frag_bytes = 0;
        assert!(model.kernel_seconds(&c) < starved);
    }

    #[test]
    fn unsupported_tc_format_falls_back_to_vector() {
        // V100 has no TF32 tensor cores; the kernel must run (and cost)
        // exactly like its plain-FP32 vector formulation.
        let v100 = TimingModel::new(DeviceSpec::v100());
        let mut c = KernelCost::new(KernelClass::DistCalc, Format::Fp32);
        c.flops = 1 << 40;
        c.bytes_read = 1 << 20;
        c.frag_bytes = 1 << 40;
        let plain = KernelCost { tc: None, ..c };
        c.tc = Some(Format::Tf32);
        assert_eq!(v100.kernel_seconds(&c), v100.kernel_seconds(&plain));
        // The CPU baseline likewise has no tensor cores at all.
        let cpu = TimingModel::new(DeviceSpec::skylake_16c());
        assert_eq!(cpu.kernel_seconds(&c), cpu.kernel_seconds(&plain));
    }

    #[test]
    fn transfer_model() {
        let model = TimingModel::new(DeviceSpec::a100());
        let t = model.transfer_seconds(25_000_000_000, true);
        assert!((t - 1.0).abs() < 1e-3, "25 GB at 25 GB/s ≈ 1 s, got {t}");
        let cpu = TimingModel::new(DeviceSpec::skylake_16c());
        assert_eq!(cpu.transfer_seconds(1 << 30, true), 0.0);
    }

    #[test]
    fn cpu_mem_efficiency_has_no_format_derating() {
        let cpu = TimingModel::new(DeviceSpec::skylake_16c());
        assert_eq!(
            cpu.mem_efficiency(Format::Fp64),
            cpu.mem_efficiency(Format::Fp16)
        );
    }
}

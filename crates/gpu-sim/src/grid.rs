//! Functional grid-stride execution.
//!
//! The paper structures every kernel as a grid-stride loop (§III-A) so that
//! any launch configuration is correct and memory accesses coalesce. The
//! helpers here execute the same iteration spaces on the host:
//!
//! * [`par_for_each`] / [`par_map_inplace`] — data-parallel execution over an
//!   index space via rayon (the semantics of independent GPU threads);
//! * [`thread_items`] — the exact index sequence a given simulated thread
//!   would process, for tests and for the layout/coalescing ablation;
//! * [`grid_stride_serial`] — run the loop exactly in GPU thread order on
//!   one core (used to prove order-independence in tests).

use crate::device::LaunchConfig;
use rayon::prelude::*;

/// Minimum items per rayon task; prevents pathological task spam for the
/// small-`d` kernels.
const MIN_CHUNK: usize = 1024;

/// Execute `f(i)` for every `i in 0..n` in parallel.
///
/// Item independence is the caller's contract (the same contract the CUDA
/// kernels have); rayon guarantees data-race freedom for the captured state.
pub fn par_for_each<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync + Send,
{
    if n == 0 {
        return;
    }
    (0..n).into_par_iter().with_min_len(MIN_CHUNK).for_each(f);
}

/// Fill `out[i] = f(i)` in parallel — the shape of `dist_calc` and
/// `update_mat_prof`, where each thread owns one output element.
pub fn par_map_inplace<T, F>(out: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    out.par_iter_mut()
        .with_min_len(MIN_CHUNK)
        .enumerate()
        .for_each(|(i, slot)| *slot = f(i));
}

/// Parallel iteration over chunks: each task gets `(chunk_start, &mut chunk)`.
/// Used by kernels whose natural work unit is a column group (sort/scan).
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    data.par_chunks_mut(chunk)
        .enumerate()
        .for_each(|(ci, slice)| f(ci * chunk, slice));
}

/// The indices thread `tid` of a grid-stride loop over `n` items visits:
/// `tid, tid + T, tid + 2T, …` with `T` total threads.
pub fn thread_items(cfg: LaunchConfig, tid: usize, n: usize) -> impl Iterator<Item = usize> {
    let stride = cfg.total_threads();
    (0..)
        .map(move |k| tid + k * stride)
        .take_while(move |&i| i < n)
}

/// Run `f` over `0..n` in exact simulated-GPU order (all threads' first
/// grid-stride iteration, then all second iterations, …). Serial; used to
/// demonstrate order-independence of kernels in tests.
pub fn grid_stride_serial<F>(cfg: LaunchConfig, n: usize, mut f: F)
where
    F: FnMut(usize),
{
    let stride = cfg.total_threads();
    let rounds = cfg.iterations_per_thread(n);
    for round in 0..rounds {
        for tid in 0..stride {
            let i = round * stride + tid;
            if i < n {
                f(i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn par_for_each_visits_every_index_once() {
        let n = 10_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        par_for_each(n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_map_inplace_matches_serial() {
        let mut out = vec![0u64; 5000];
        par_map_inplace(&mut out, |i| (i * i) as u64);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i * i) as u64);
        }
    }

    #[test]
    fn par_chunks_cover_all_without_overlap() {
        let mut data = vec![0u32; 1037]; // deliberately not a multiple
        par_chunks_mut(&mut data, 64, |start, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = (start + k) as u32;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i as u32);
        }
    }

    #[test]
    fn thread_items_partition_the_index_space() {
        let cfg = LaunchConfig::new(2, 3); // 6 threads
        let n = 20;
        let mut seen = vec![false; n];
        for tid in 0..cfg.total_threads() {
            for i in thread_items(cfg, tid, n) {
                assert!(!seen[i], "index {i} visited twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        // Thread 0 gets 0, 6, 12, 18.
        let t0: Vec<usize> = thread_items(cfg, 0, n).collect();
        assert_eq!(t0, vec![0, 6, 12, 18]);
    }

    #[test]
    fn serial_grid_order_covers_everything() {
        let cfg = LaunchConfig::new(4, 8);
        let n = 100;
        let mut count = vec![0u8; n];
        grid_stride_serial(cfg, n, |i| count[i] += 1);
        assert!(count.iter().all(|&c| c == 1));
    }

    #[test]
    fn empty_work_is_fine() {
        par_for_each(0, |_| panic!("must not be called"));
        let mut empty: Vec<u8> = vec![];
        par_map_inplace(&mut empty, |_| 0);
    }
}

//! Device health ledger: tracks per-device kernel failures and quarantines
//! simulated GPUs that keep failing, so the driver degrades to fewer
//! devices instead of failing the whole run.
//!
//! The ledger is shared by the coordinator and the host worker threads of
//! the concurrent tile pipeline, so all state lives behind a `Mutex` and
//! every method takes `&self`. Decisions are deterministic functions of the
//! recorded failures — no clocks, no randomness — which keeps fault-plan
//! replays reproducible.

use std::sync::Mutex;

/// Shared per-device failure accounting with quarantine.
///
/// A device that accumulates `threshold` failures is quarantined: the
/// [`DeviceHealth::dispatch`] helper steers new work to the next healthy
/// device instead. The last healthy device is never quarantined — a run
/// degrades to one device rather than deadlocking with zero.
#[derive(Debug)]
pub struct DeviceHealth {
    threshold: u32,
    inner: Mutex<HealthInner>,
}

#[derive(Debug)]
struct HealthInner {
    failures: Vec<u32>,
    quarantined: Vec<bool>,
}

impl DeviceHealth {
    /// A ledger for `n_devices` devices quarantining after `threshold`
    /// failures (a `threshold` of 0 is treated as 1).
    pub fn new(n_devices: usize, threshold: u32) -> DeviceHealth {
        DeviceHealth {
            threshold: threshold.max(1),
            inner: Mutex::new(HealthInner {
                failures: vec![0; n_devices],
                quarantined: vec![false; n_devices],
            }),
        }
    }

    /// Record one failure on `dev`. Returns `true` when this failure newly
    /// quarantines the device.
    pub fn record_failure(&self, dev: usize) -> bool {
        let mut inner = self.inner.lock().unwrap();
        inner.failures[dev] = inner.failures[dev].saturating_add(1);
        let over = inner.failures[dev] >= self.threshold;
        let healthy_elsewhere = inner
            .quarantined
            .iter()
            .enumerate()
            .any(|(i, &q)| i != dev && !q);
        if over && !inner.quarantined[dev] && healthy_elsewhere {
            inner.quarantined[dev] = true;
            return true;
        }
        false
    }

    /// Whether `dev` is currently quarantined.
    pub fn is_quarantined(&self, dev: usize) -> bool {
        self.inner.lock().unwrap().quarantined[dev]
    }

    /// Indices of quarantined devices, ascending.
    pub fn quarantined(&self) -> Vec<usize> {
        let inner = self.inner.lock().unwrap();
        inner
            .quarantined
            .iter()
            .enumerate()
            .filter_map(|(i, &q)| q.then_some(i))
            .collect()
    }

    /// Number of devices still accepting work.
    pub fn healthy_count(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        inner.quarantined.iter().filter(|&&q| !q).count()
    }

    /// Failures recorded against `dev`.
    pub fn failures(&self, dev: usize) -> u32 {
        self.inner.lock().unwrap().failures[dev]
    }

    /// The device that should run a piece of work preferring `preferred`:
    /// `preferred` itself while healthy, otherwise the `salt`-th healthy
    /// device after it (round-robin), so retries rotate across survivors.
    /// With every device quarantined (impossible via
    /// [`DeviceHealth::record_failure`], which spares the last one) the
    /// preference stands.
    pub fn dispatch(&self, preferred: usize, salt: usize) -> usize {
        let inner = self.inner.lock().unwrap();
        let n = inner.quarantined.len();
        if n == 0 || !inner.quarantined[preferred] {
            return preferred;
        }
        let healthy: Vec<usize> = (0..n).filter(|&i| !inner.quarantined[i]).collect();
        if healthy.is_empty() {
            return preferred;
        }
        // Start from the slot after the preferred device so re-dispatch
        // spreads over the survivors deterministically.
        let start = healthy.partition_point(|&i| i < preferred);
        healthy[(start + salt) % healthy.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarantines_at_threshold() {
        let health = DeviceHealth::new(4, 3);
        assert!(!health.record_failure(2));
        assert!(!health.record_failure(2));
        assert!(health.record_failure(2), "third failure quarantines");
        assert!(health.is_quarantined(2));
        assert!(!health.record_failure(2), "already quarantined");
        assert_eq!(health.quarantined(), vec![2]);
        assert_eq!(health.healthy_count(), 3);
        assert_eq!(health.failures(2), 4);
    }

    #[test]
    fn never_quarantines_last_healthy_device() {
        let health = DeviceHealth::new(2, 1);
        assert!(health.record_failure(0));
        for _ in 0..10 {
            assert!(!health.record_failure(1), "last device must stay up");
        }
        assert!(!health.is_quarantined(1));
        assert_eq!(health.healthy_count(), 1);
    }

    #[test]
    fn dispatch_prefers_assigned_then_rotates_healthy() {
        let health = DeviceHealth::new(4, 1);
        assert_eq!(health.dispatch(1, 0), 1);
        health.record_failure(1);
        // Healthy = [0, 2, 3]; slot after device 1 is 2.
        assert_eq!(health.dispatch(1, 0), 2);
        assert_eq!(health.dispatch(1, 1), 3);
        assert_eq!(health.dispatch(1, 2), 0);
        assert_eq!(health.dispatch(1, 3), 2);
    }

    #[test]
    fn single_device_always_dispatches_to_itself() {
        let health = DeviceHealth::new(1, 1);
        health.record_failure(0);
        health.record_failure(0);
        assert_eq!(health.dispatch(0, 5), 0);
        assert!(!health.is_quarantined(0));
    }

    #[test]
    fn zero_threshold_behaves_like_one() {
        let health = DeviceHealth::new(3, 0);
        assert!(health.record_failure(0));
        assert!(health.is_quarantined(0));
    }
}

//! Device-memory accounting.
//!
//! The tiling scheme exists partly because "despite the limited device
//! memory, our algorithm can process arbitrary large problems" (§III-B).
//! [`MemoryTracker`] enforces the 32 GB (V100) / 40 GB (A100) capacities so
//! the tile planner in `mdmp-core` can verify that a tile's working set
//! fits, and reports peak usage for the capacity experiments.

use std::collections::BTreeMap;
use std::fmt;

/// Error returned when an allocation would exceed device memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocError {
    /// Requested size in bytes.
    pub requested: u64,
    /// Bytes currently in use.
    pub in_use: u64,
    /// Device capacity in bytes.
    pub capacity: u64,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "device out of memory: requested {} B with {} B in use of {} B capacity",
            self.requested, self.in_use, self.capacity
        )
    }
}

impl std::error::Error for AllocError {}

/// Handle for a tracked allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct AllocationId(u64);

/// Tracks logical device-memory allocations against a capacity.
///
/// "Logical" because functional data lives in ordinary host `Vec`s; the
/// tracker models only the *budget* a real GPU run would consume.
#[derive(Debug)]
pub struct MemoryTracker {
    capacity: u64,
    in_use: u64,
    peak: u64,
    next_id: u64,
    live: BTreeMap<u64, u64>,
}

impl MemoryTracker {
    /// A tracker with the given capacity in bytes.
    pub fn new(capacity: u64) -> MemoryTracker {
        MemoryTracker {
            capacity,
            in_use: 0,
            peak: 0,
            next_id: 0,
            live: BTreeMap::new(),
        }
    }

    /// Reserve `bytes`; fails if the device would run out of memory.
    pub fn alloc(&mut self, bytes: u64) -> Result<AllocationId, AllocError> {
        let fits = self
            .in_use
            .checked_add(bytes)
            .is_some_and(|total| total <= self.capacity);
        if !fits {
            return Err(AllocError {
                requested: bytes,
                in_use: self.in_use,
                capacity: self.capacity,
            });
        }
        let id = AllocationId(self.next_id);
        self.next_id += 1;
        self.live.insert(id.0, bytes);
        self.in_use += bytes;
        self.peak = self.peak.max(self.in_use);
        Ok(id)
    }

    /// Release a previous allocation.
    ///
    /// # Panics
    /// Panics on double free or unknown id (a logic error in the caller).
    pub fn free(&mut self, id: AllocationId) {
        let bytes = self
            .live
            .remove(&id.0)
            .expect("free of unknown or already-freed allocation");
        self.in_use -= bytes;
    }

    /// Release every live allocation (end of a tile's lifetime).
    pub fn free_all(&mut self) {
        self.live.clear();
        self.in_use = 0;
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// High-water mark since construction.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Device capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Whether a hypothetical additional allocation would fit right now.
    pub fn would_fit(&self, bytes: u64) -> bool {
        self.in_use.saturating_add(bytes) <= self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut t = MemoryTracker::new(1000);
        let a = t.alloc(400).unwrap();
        let b = t.alloc(500).unwrap();
        assert_eq!(t.in_use(), 900);
        assert_eq!(t.peak(), 900);
        t.free(a);
        assert_eq!(t.in_use(), 500);
        let c = t.alloc(450).unwrap();
        assert_eq!(t.in_use(), 950);
        assert_eq!(t.peak(), 950);
        t.free(b);
        t.free(c);
        assert_eq!(t.in_use(), 0);
        assert_eq!(t.peak(), 950);
    }

    #[test]
    fn oom_is_reported_not_panicked() {
        let mut t = MemoryTracker::new(100);
        let _a = t.alloc(80).unwrap();
        let err = t.alloc(30).unwrap_err();
        assert_eq!(err.requested, 30);
        assert_eq!(err.in_use, 80);
        assert_eq!(err.capacity, 100);
        assert!(err.to_string().contains("out of memory"));
    }

    #[test]
    fn would_fit_and_free_all() {
        let mut t = MemoryTracker::new(100);
        assert!(t.would_fit(100));
        let _ = t.alloc(60).unwrap();
        assert!(!t.would_fit(50));
        t.free_all();
        assert!(t.would_fit(100));
        assert_eq!(t.peak(), 60);
    }

    #[test]
    #[should_panic(expected = "unknown or already-freed")]
    fn double_free_panics() {
        let mut t = MemoryTracker::new(100);
        let a = t.alloc(10).unwrap();
        t.free(a);
        t.free(a);
    }

    #[test]
    fn overflow_guard() {
        let mut t = MemoryTracker::new(u64::MAX);
        let _ = t.alloc(u64::MAX - 1).unwrap();
        assert!(t.alloc(u64::MAX).is_err());
    }
}

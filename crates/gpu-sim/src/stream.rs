//! CUDA-stream-like timeline simulation for one device.
//!
//! The paper relies on the CUDA Stream Management API for implicit
//! synchronization: tiles are issued on up to 16 non-blocking streams so
//! that host↔device transfers overlap kernel execution (§IV). The model
//! reproduces that with three engine clocks per device:
//!
//! * one **compute engine** — the paper's kernels launch enough threads to
//!   fill every SM, so concurrent kernels from different streams serialize;
//! * one **H2D copy engine** and one **D2H copy engine** — transfers overlap
//!   compute and each other, as on real hardware.
//!
//! An operation submitted to a stream starts when both its stream and the
//! engine it needs are free, which is exactly the semantics that produce the
//! Fig. 7 effect: going from 1 tile to many tiles first *improves* total
//! time (transfers hide behind compute) before merge overhead catches up.

use crate::cost::KernelCost;
use crate::timing::TimingModel;

/// An operation submitted to a stream.
#[derive(Debug, Clone)]
pub enum Op {
    /// Host→device copy of `bytes`.
    H2d {
        /// Transfer size in bytes.
        bytes: u64,
    },
    /// Device→host copy of `bytes`.
    D2h {
        /// Transfer size in bytes.
        bytes: u64,
    },
    /// A kernel execution (possibly an aggregate of many launches).
    Kernel {
        /// The kernel's cost descriptor.
        cost: KernelCost,
    },
}

/// The scheduled interval of a submitted operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpRecord {
    /// Stream the operation ran on.
    pub stream: usize,
    /// Start time in seconds since timeline start.
    pub start: f64,
    /// End time in seconds.
    pub end: f64,
}

impl OpRecord {
    /// Duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Simulated timeline of one device.
#[derive(Debug, Clone)]
pub struct DeviceTimeline {
    streams: Vec<f64>,
    compute_free: f64,
    h2d_free: f64,
    d2h_free: f64,
    compute_busy: f64,
    copy_busy: f64,
    max_streams: usize,
}

impl DeviceTimeline {
    /// A timeline with the device's stream cap (16 in the paper's code).
    pub fn new(max_streams: usize) -> DeviceTimeline {
        assert!(max_streams > 0, "need at least one stream");
        DeviceTimeline {
            streams: vec![0.0; max_streams],
            compute_free: 0.0,
            h2d_free: 0.0,
            d2h_free: 0.0,
            compute_busy: 0.0,
            copy_busy: 0.0,
            max_streams,
        }
    }

    /// Map a logical stream index to a physical stream (the implementation
    /// reuses its 16 streams round-robin for later tiles).
    pub fn physical_stream(&self, logical: usize) -> usize {
        logical % self.max_streams
    }

    /// Submit an operation on a logical stream; returns its schedule.
    pub fn submit(&mut self, logical_stream: usize, op: &Op, model: &TimingModel) -> OpRecord {
        let s = self.physical_stream(logical_stream);
        let (duration, engine) = match op {
            Op::H2d { bytes } => (model.transfer_seconds(*bytes, true), Engine::H2d),
            Op::D2h { bytes } => (model.transfer_seconds(*bytes, false), Engine::D2h),
            Op::Kernel { cost } => (model.kernel_seconds(cost), Engine::Compute),
        };
        let engine_free = match engine {
            Engine::Compute => self.compute_free,
            Engine::H2d => self.h2d_free,
            Engine::D2h => self.d2h_free,
        };
        let start = self.streams[s].max(engine_free);
        let end = start + duration;
        self.streams[s] = end;
        match engine {
            Engine::Compute => {
                self.compute_free = end;
                self.compute_busy += duration;
            }
            Engine::H2d => {
                self.h2d_free = end;
                self.copy_busy += duration;
            }
            Engine::D2h => {
                self.d2h_free = end;
                self.copy_busy += duration;
            }
        }
        OpRecord {
            stream: s,
            start,
            end,
        }
    }

    /// Time at which the last submitted operation finishes.
    pub fn makespan(&self) -> f64 {
        self.streams
            .iter()
            .copied()
            .fold(0.0, f64::max)
            .max(self.compute_free)
            .max(self.h2d_free)
            .max(self.d2h_free)
    }

    /// Seconds the compute engine was busy (for utilization reporting).
    pub fn compute_busy(&self) -> f64 {
        self.compute_busy
    }

    /// Seconds the copy engines were busy in total.
    pub fn copy_busy(&self) -> f64 {
        self.copy_busy
    }

    /// Reset all clocks (a fresh experiment on the same device).
    pub fn reset(&mut self) {
        for s in &mut self.streams {
            *s = 0.0;
        }
        self.compute_free = 0.0;
        self.h2d_free = 0.0;
        self.d2h_free = 0.0;
        self.compute_busy = 0.0;
        self.copy_busy = 0.0;
    }
}

enum Engine {
    Compute,
    H2d,
    D2h,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{KernelClass, KernelCost};
    use crate::device::DeviceSpec;
    use mdmp_precision::Format;

    fn model() -> TimingModel {
        TimingModel::new(DeviceSpec::a100())
    }

    fn kernel_cost(seconds_of_bytes: f64) -> KernelCost {
        // bytes chosen so the kernel takes ~seconds_of_bytes on A100 FP64.
        let model = model();
        let bw = model.spec().mem_bandwidth * model.mem_efficiency(Format::Fp64);
        let mut c = KernelCost::new(KernelClass::DistCalc, Format::Fp64);
        c.bytes_read = (seconds_of_bytes * bw) as u64;
        c
    }

    #[test]
    fn same_stream_serializes() {
        let m = model();
        let mut tl = DeviceTimeline::new(16);
        let a = tl.submit(
            0,
            &Op::Kernel {
                cost: kernel_cost(1.0),
            },
            &m,
        );
        let b = tl.submit(
            0,
            &Op::Kernel {
                cost: kernel_cost(1.0),
            },
            &m,
        );
        assert!(b.start >= a.end);
        assert!((tl.makespan() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn different_streams_still_share_the_compute_engine() {
        let m = model();
        let mut tl = DeviceTimeline::new(16);
        tl.submit(
            0,
            &Op::Kernel {
                cost: kernel_cost(1.0),
            },
            &m,
        );
        tl.submit(
            1,
            &Op::Kernel {
                cost: kernel_cost(1.0),
            },
            &m,
        );
        // Full-device kernels serialize even across streams.
        assert!((tl.makespan() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn transfers_overlap_compute_across_streams() {
        let m = model();
        let mut tl = DeviceTimeline::new(16);
        // Stream 0: 1 s kernel. Stream 1: a 1 s H2D (25 GB at 25 GB/s).
        tl.submit(
            0,
            &Op::Kernel {
                cost: kernel_cost(1.0),
            },
            &m,
        );
        tl.submit(
            1,
            &Op::H2d {
                bytes: 25_000_000_000,
            },
            &m,
        );
        let makespan = tl.makespan();
        assert!(
            makespan < 1.1,
            "copy should hide behind compute, makespan {makespan}"
        );
    }

    #[test]
    fn transfer_then_kernel_on_one_stream_pipelines_with_other_streams() {
        let m = model();
        let mut tl = DeviceTimeline::new(16);
        // Two tiles, each: 0.5 s H2D then 1 s kernel, on separate streams.
        for tile in 0..2 {
            tl.submit(
                tile,
                &Op::H2d {
                    bytes: 12_500_000_000,
                },
                &m,
            );
            tl.submit(
                tile,
                &Op::Kernel {
                    cost: kernel_cost(1.0),
                },
                &m,
            );
        }
        // Serial would be 3.0 s; tile 1's copy overlaps tile 0's kernel.
        let makespan = tl.makespan();
        assert!(makespan < 2.8, "expected overlap, makespan {makespan}");
        assert!(makespan >= 2.0);
    }

    #[test]
    fn stream_reuse_wraps_at_cap() {
        let tl = DeviceTimeline::new(16);
        assert_eq!(tl.physical_stream(0), 0);
        assert_eq!(tl.physical_stream(16), 0);
        assert_eq!(tl.physical_stream(17), 1);
    }

    #[test]
    fn reset_clears_clocks() {
        let m = model();
        let mut tl = DeviceTimeline::new(4);
        tl.submit(
            0,
            &Op::Kernel {
                cost: kernel_cost(1.0),
            },
            &m,
        );
        assert!(tl.makespan() > 0.0);
        tl.reset();
        assert_eq!(tl.makespan(), 0.0);
        assert_eq!(tl.compute_busy(), 0.0);
    }
}

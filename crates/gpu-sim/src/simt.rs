//! A faithful SIMT block executor with real barrier semantics.
//!
//! The functional kernels in `mdmp-core` execute as data-parallel loops,
//! which is semantically equivalent for independent elements. For the
//! *cooperative* kernels (Bitonic sort + scan, §III-A), where threads of a
//! group communicate through shared memory between barriers, this module
//! provides the faithful execution model: a kernel is a sequence of
//! **phases** separated by group barriers; within a phase every thread of
//! the block runs once against the shared state, in any order; the barrier
//! is the only ordering guarantee — exactly CUDA's `__syncthreads()`
//! contract.
//!
//! To make the "any order within a phase" contract testable, the executor
//! can run threads forward, reversed, or interleaved; a correctly
//! synchronized kernel must produce identical results under every order
//! ([`ThreadOrder`]).

use rayon::prelude::*;

/// Execution order of threads within a phase — correct phased kernels are
/// insensitive to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadOrder {
    /// Thread 0, 1, 2, …
    Forward,
    /// Highest thread id first.
    Reverse,
    /// Even threads, then odd threads.
    EvenOdd,
}

impl ThreadOrder {
    /// All orders, for exhaustive order-independence tests.
    pub const ALL: [ThreadOrder; 3] = [
        ThreadOrder::Forward,
        ThreadOrder::Reverse,
        ThreadOrder::EvenOdd,
    ];

    fn indices(self, n: usize) -> Vec<usize> {
        match self {
            ThreadOrder::Forward => (0..n).collect(),
            ThreadOrder::Reverse => (0..n).rev().collect(),
            ThreadOrder::EvenOdd => (0..n).step_by(2).chain((0..n).skip(1).step_by(2)).collect(),
        }
    }
}

/// A cooperative block kernel: shared state of type `S`, a fixed thread
/// count, and a phase program. Each phase is one function applied to every
/// thread id; phases are separated by implicit barriers.
pub trait BlockKernel: Sync {
    /// Shared-memory state of one block.
    type Shared: Send;

    /// Threads per block.
    fn threads(&self) -> usize;

    /// Number of barrier-separated phases.
    fn phases(&self) -> usize;

    /// Run `phase` for one thread against the block's shared state.
    ///
    /// Threads of a phase are executed sequentially in an arbitrary order,
    /// so data races *within* a phase manifest deterministically as
    /// order-dependent results (caught by [`run_block_all_orders`]) rather
    /// than as UB.
    fn step(&self, phase: usize, thread: usize, shared: &mut Self::Shared);
}

/// Execute one block to completion in the given thread order.
pub fn run_block<K: BlockKernel>(kernel: &K, shared: &mut K::Shared, order: ThreadOrder) {
    let order_idx = order.indices(kernel.threads());
    for phase in 0..kernel.phases() {
        for &tid in &order_idx {
            kernel.step(phase, tid, shared);
        }
    }
}

/// Execute one block under every thread order, asserting identical results
/// — the executable definition of "correctly synchronized".
///
/// `clone_state` produces fresh shared state per run; `fingerprint` maps a
/// final state to a comparable value.
pub fn run_block_all_orders<K, F, G, T>(kernel: &K, clone_state: F, fingerprint: G) -> T
where
    K: BlockKernel,
    F: Fn() -> K::Shared,
    G: Fn(&K::Shared) -> T,
    T: PartialEq + std::fmt::Debug,
{
    let mut results = Vec::new();
    for order in ThreadOrder::ALL {
        let mut state = clone_state();
        run_block(kernel, &mut state, order);
        results.push(fingerprint(&state));
    }
    let first = results.remove(0);
    for (i, other) in results.into_iter().enumerate() {
        assert_eq!(
            first,
            other,
            "kernel result depends on thread order ({:?} vs {:?}) — missing barrier",
            ThreadOrder::ALL[0],
            ThreadOrder::ALL[i + 1]
        );
    }
    first
}

/// Execute many independent blocks in parallel (the grid): `make_state`
/// builds block `b`'s shared state, `finish` consumes it.
pub fn run_grid<K, MS, FIN>(kernel: &K, blocks: usize, make_state: MS, finish: FIN)
where
    K: BlockKernel,
    MS: Fn(usize) -> K::Shared + Sync,
    FIN: Fn(usize, K::Shared) + Sync,
{
    (0..blocks).into_par_iter().for_each(|b| {
        let mut state = make_state(b);
        run_block(kernel, &mut state, ThreadOrder::Forward);
        finish(b, state);
    });
}

/// The paper's cooperative Bitonic sort + fan-in inclusive-scan-average as
/// a phased block kernel over a power-of-two fiber held in "shared memory"
/// (§III-A): one thread per element pair for the sort stages, one thread
/// per element for the scan steps, a barrier after every stage.
pub struct BitonicScanKernel<T> {
    len: usize,
    d: usize,
    sort_stages: Vec<(usize, usize)>,
    scan_steps: Vec<usize>,
    _marker: std::marker::PhantomData<T>,
}

impl<T: mdmp_precision::Real> BitonicScanKernel<T> {
    /// A kernel for fibers padded to `len` (power of two), scanning the
    /// first `d` entries.
    pub fn new(len: usize, d: usize) -> BitonicScanKernel<T> {
        assert!(len.is_power_of_two(), "fiber length must be a power of two");
        assert!(d <= len);
        let mut sort_stages = Vec::new();
        let mut k = 2;
        while k <= len {
            let mut j = k / 2;
            while j > 0 {
                sort_stages.push((k, j));
                j >>= 1;
            }
            k <<= 1;
        }
        let mut scan_steps = Vec::new();
        let mut s = 1;
        while s < d {
            scan_steps.push(s);
            s <<= 1;
        }
        BitonicScanKernel {
            len,
            d,
            sort_stages,
            scan_steps,
            _marker: std::marker::PhantomData,
        }
    }
}

/// Shared state: the fiber, plus a scratch copy for the double-buffered
/// scan phases.
pub struct FiberState<T> {
    /// The data being sorted/scanned.
    pub data: Vec<T>,
    scratch: Vec<T>,
}

impl<T: mdmp_precision::Real> FiberState<T> {
    /// Wrap a fiber (length must equal the kernel's `len`).
    pub fn new(data: Vec<T>) -> FiberState<T> {
        let scratch = data.clone();
        FiberState { data, scratch }
    }
}

impl<T: mdmp_precision::Real> BlockKernel for BitonicScanKernel<T> {
    type Shared = FiberState<T>;

    fn threads(&self) -> usize {
        self.len
    }

    // sort stages + (copy + combine) per scan step + final divide.
    fn phases(&self) -> usize {
        self.sort_stages.len() + 2 * self.scan_steps.len() + 1
    }

    fn step(&self, phase: usize, tid: usize, shared: &mut FiberState<T>) {
        if phase < self.sort_stages.len() {
            // One compare-exchange per thread pair (the lower index acts).
            let (k, j) = self.sort_stages[phase];
            let l = tid ^ j;
            if l > tid {
                let ascending = (tid & k) == 0;
                let a = shared.data[tid];
                let b = shared.data[l];
                let out_of_order = match a.total_order(b) {
                    std::cmp::Ordering::Greater => ascending,
                    std::cmp::Ordering::Less => !ascending,
                    std::cmp::Ordering::Equal => false,
                };
                if out_of_order {
                    shared.data[tid] = b;
                    shared.data[l] = a;
                }
            }
            return;
        }
        let phase = phase - self.sort_stages.len();
        if phase < 2 * self.scan_steps.len() {
            let step = self.scan_steps[phase / 2];
            if phase.is_multiple_of(2) {
                // Copy phase: snapshot for the double-buffered read.
                shared.scratch[tid] = shared.data[tid];
            } else if tid >= step && tid < self.d {
                // Combine phase: read the snapshot, write the live buffer.
                shared.data[tid] = shared.scratch[tid] + shared.scratch[tid - step];
            }
            return;
        }
        // Final phase: inclusive averages.
        if tid < self.d {
            shared.data[tid] = shared.data[tid] / T::from_usize(tid + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdmp_precision::{Half, Real};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Mutex;

    fn reference_sort_scan(mut fiber: Vec<f64>, d: usize) -> Vec<f64> {
        fiber.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut run = 0.0;
        for (k, v) in fiber.iter_mut().enumerate().take(d) {
            run += *v;
            *v = run / (k + 1) as f64;
        }
        fiber
    }

    #[test]
    fn simt_bitonic_scan_matches_reference_in_f64() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let len = 1usize << rng.gen_range(1..7);
            let d = rng.gen_range(1..=len);
            let fiber: Vec<f64> = (0..len).map(|_| rng.gen_range(-50.0..50.0)).collect();
            let kernel = BitonicScanKernel::<f64>::new(len, d);
            let mut state = FiberState::new(fiber.clone());
            run_block(&kernel, &mut state, ThreadOrder::Forward);
            let expected = reference_sort_scan(fiber, d);
            for (k, &e) in expected.iter().enumerate().take(d) {
                assert!((state.data[k] - e).abs() < 1e-12, "len={len} d={d} k={k}");
            }
        }
    }

    #[test]
    fn simt_kernel_is_thread_order_independent() {
        let mut rng = StdRng::seed_from_u64(4);
        let fiber: Vec<f64> = (0..64).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let kernel = BitonicScanKernel::<f64>::new(64, 64);
        let result = run_block_all_orders(
            &kernel,
            || FiberState::new(fiber.clone()),
            |s| s.data.clone(),
        );
        assert_eq!(result.len(), 64);
    }

    /// The SIMT execution must agree bit-for-bit with the direct host
    /// implementation of the same network in reduced precision — the fan-in
    /// association order is part of the contract.
    #[test]
    fn simt_matches_direct_kernel_bitwise_in_half() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let d = rng.gen_range(2..=32usize);
            let len = d.next_power_of_two();
            let fiber: Vec<Half> = (0..len)
                .map(|i| {
                    if i < d {
                        Half::from_f64(rng.gen_range(0.0..20.0))
                    } else {
                        Half::infinity()
                    }
                })
                .collect();
            // SIMT path.
            let kernel = BitonicScanKernel::<Half>::new(len, d);
            let mut state = FiberState::new(fiber.clone());
            run_block(&kernel, &mut state, ThreadOrder::Reverse);
            // Direct path (the production kernel).
            let mut direct = fiber.clone();
            crate::simt::direct_check::bitonic_scan_direct(&mut direct, d);
            for (k, dv) in direct.iter().enumerate().take(d) {
                assert_eq!(
                    state.data[k].to_bits(),
                    dv.to_bits(),
                    "d={d} k={k}: SIMT {} vs direct {}",
                    state.data[k],
                    dv
                );
            }
        }
    }

    #[test]
    fn grid_runs_blocks_in_parallel() {
        let kernel = BitonicScanKernel::<f64>::new(8, 8);
        let outputs = Mutex::new(vec![Vec::new(); 32]);
        run_grid(
            &kernel,
            32,
            |b| FiberState::new((0..8).map(|i| ((b * 7 + i * 3) % 11) as f64).collect()),
            |b, state| {
                outputs.lock().unwrap()[b] = state.data;
            },
        );
        let outputs = outputs.into_inner().unwrap();
        for out in &outputs {
            assert_eq!(out.len(), 8);
            // First d entries of a sorted-then-averaged fiber ascend... the
            // averages are non-decreasing because inputs were sorted.
            for w in out.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
        }
    }
}

#[cfg(test)]
mod direct_check {
    //! A copy of the production sort+scan semantics for the bitwise
    //! cross-check (mdmp-core depends on this crate, so we cannot import
    //! the production kernel here without a cycle; the test asserts the
    //! *network*, which both implement independently).
    use mdmp_precision::Real;

    pub fn bitonic_scan_direct<T: Real>(a: &mut [T], d: usize) {
        let n = a.len();
        let mut k = 2;
        while k <= n {
            let mut j = k / 2;
            while j > 0 {
                for i in 0..n {
                    let l = i ^ j;
                    if l > i {
                        let ascending = (i & k) == 0;
                        let out_of_order = match a[i].total_order(a[l]) {
                            std::cmp::Ordering::Greater => ascending,
                            std::cmp::Ordering::Less => !ascending,
                            std::cmp::Ordering::Equal => false,
                        };
                        if out_of_order {
                            a.swap(i, l);
                        }
                    }
                }
                j >>= 1;
            }
            k <<= 1;
        }
        let mut s = 1;
        while s < d {
            let mut t = d - 1;
            loop {
                if t >= s {
                    let combined = a[t] + a[t - s];
                    a[t] = combined;
                }
                if t == 0 {
                    break;
                }
                t -= 1;
            }
            s <<= 1;
        }
        for (k, v) in a.iter_mut().take(d).enumerate() {
            *v = *v / T::from_usize(k + 1);
        }
    }
}

//! # mdmp-gpu-sim
//!
//! A software execution model of the multi-GPU systems the paper runs on
//! (DGX-1 with 8×V100, Raven nodes with 4×A100), built because this
//! reproduction has no GPU hardware available.
//!
//! The model has two faces:
//!
//! 1. **Functional execution** — kernels are data-parallel Rust closures run
//!    over a simulated grid ([`grid`]). The arithmetic is performed exactly
//!    as the paper's CUDA kernels perform it (same operation order, same
//!    per-operation rounding via `mdmp-precision`), so accuracy results are
//!    faithful.
//! 2. **Performance modelling** — every kernel reports a [`cost::KernelCost`]
//!    (bytes moved, FLOPs, shared-memory ops, launches, group barriers) and
//!    the [`timing::TimingModel`] converts it to seconds with a roofline
//!    model calibrated against the utilization numbers the paper reports
//!    from NVIDIA Nsight Compute (§V-C). Streams, copy engines and
//!    multi-device scheduling are simulated by [`stream::DeviceTimeline`]
//!    and [`executor::GpuSystem`], reproducing the overlap behaviour that
//!    drives Fig. 5 and Fig. 7.
//!
//! The calibration constants live in [`timing`] and are documented in the
//! repository's EXPERIMENTS.md.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cluster;
pub mod cost;
pub mod device;
pub mod executor;
pub mod grid;
pub mod health;
pub mod memory;
pub mod mma;
pub mod profiler;
pub mod simt;
pub mod stream;
pub mod timing;

pub use cluster::{ClusterSystem, Interconnect};
pub use cost::{CostLedger, KernelClass, KernelCost};
pub use device::{DeviceKind, DeviceSpec, LaunchConfig, TcThroughput};
pub use executor::{GpuSystem, SimDevice};
pub use health::DeviceHealth;
pub use memory::{AllocError, MemoryTracker};
pub use mma::{default_chunk_k, mma_dot, round_operand, MmaConfig, MMA_CHUNK_SIZES};
pub use profiler::UtilizationReport;
pub use simt::{run_block, run_grid, BitonicScanKernel, BlockKernel, FiberState, ThreadOrder};
pub use stream::{DeviceTimeline, Op, OpRecord};
pub use timing::TimingModel;

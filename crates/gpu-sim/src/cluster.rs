//! Multi-node cluster model — the paper's §VII outlook ("our implementation
//! could be further extended to multiple nodes, e.g. using MPI or a
//! Cloud-based solution").
//!
//! A [`ClusterSystem`] is a set of nodes, each a [`GpuSystem`], connected by
//! an interconnect with finite bandwidth and latency. The communication
//! model is MPI-shaped: the input series are broadcast to every node before
//! compute, and the per-node partial profiles are combined with a binary
//! tree reduction (`⌈log₂ nodes⌉` rounds of point-to-point transfers).

use crate::device::DeviceSpec;
use crate::executor::GpuSystem;

/// Interconnect description (defaults model 100 Gbit/s InfiniBand).
#[derive(Debug, Clone)]
pub struct Interconnect {
    /// Point-to-point bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Per-message latency in seconds.
    pub latency: f64,
}

impl Default for Interconnect {
    fn default() -> Interconnect {
        Interconnect {
            bandwidth: 12.5e9, // 100 Gbit/s
            latency: 2.0e-6,
        }
    }
}

impl Interconnect {
    /// Time for one point-to-point message of `bytes`.
    pub fn message_seconds(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }

    /// Time for a binary-tree broadcast of `bytes` to `nodes` nodes.
    pub fn broadcast_seconds(&self, bytes: u64, nodes: usize) -> f64 {
        if nodes <= 1 {
            return 0.0;
        }
        let rounds = usize::BITS - (nodes - 1).leading_zeros();
        rounds as f64 * self.message_seconds(bytes)
    }

    /// Time for a binary-tree reduction of `bytes` from `nodes` nodes
    /// (the min/argmin combine itself is charged by the caller).
    pub fn reduce_seconds(&self, bytes: u64, nodes: usize) -> f64 {
        self.broadcast_seconds(bytes, nodes)
    }
}

/// A cluster of identical GPU nodes.
#[derive(Debug)]
pub struct ClusterSystem {
    nodes: Vec<GpuSystem>,
    gpus_per_node: usize,
    /// The interconnect between nodes.
    pub interconnect: Interconnect,
}

impl ClusterSystem {
    /// A cluster of `nodes` nodes with `gpus_per_node` identical GPUs each.
    pub fn homogeneous(
        spec: DeviceSpec,
        nodes: usize,
        gpus_per_node: usize,
        interconnect: Interconnect,
    ) -> ClusterSystem {
        assert!(nodes > 0 && gpus_per_node > 0, "cluster must be non-empty");
        ClusterSystem {
            nodes: (0..nodes)
                .map(|_| GpuSystem::homogeneous(spec.clone(), gpus_per_node))
                .collect(),
            gpus_per_node,
            interconnect,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total GPUs across the cluster.
    pub fn total_devices(&self) -> usize {
        self.nodes.len() * self.gpus_per_node
    }

    /// Map a global device index to `(node, local device)`.
    pub fn locate(&self, global_device: usize) -> (usize, usize) {
        assert!(global_device < self.total_devices(), "device out of range");
        (
            global_device / self.gpus_per_node,
            global_device % self.gpus_per_node,
        )
    }

    /// Access a node's GPU system.
    pub fn node(&self, idx: usize) -> &GpuSystem {
        &self.nodes[idx]
    }

    /// Mutable access to a node's GPU system.
    pub fn node_mut(&mut self, idx: usize) -> &mut GpuSystem {
        &mut self.nodes[idx]
    }

    /// Slowest node's compute makespan (nodes run concurrently).
    pub fn compute_makespan(&self) -> f64 {
        self.nodes.iter().map(|n| n.makespan()).fold(0.0, f64::max)
    }

    /// Reset every node.
    pub fn reset(&mut self) {
        for n in &mut self.nodes {
            n.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{KernelClass, KernelCost};
    use mdmp_precision::Format;

    #[test]
    fn geometry_and_locate() {
        let c = ClusterSystem::homogeneous(DeviceSpec::a100(), 3, 4, Interconnect::default());
        assert_eq!(c.node_count(), 3);
        assert_eq!(c.total_devices(), 12);
        assert_eq!(c.locate(0), (0, 0));
        assert_eq!(c.locate(5), (1, 1));
        assert_eq!(c.locate(11), (2, 3));
    }

    #[test]
    #[should_panic(expected = "device out of range")]
    fn locate_rejects_out_of_range() {
        let c = ClusterSystem::homogeneous(DeviceSpec::a100(), 2, 2, Interconnect::default());
        let _ = c.locate(4);
    }

    #[test]
    fn interconnect_times() {
        let net = Interconnect::default();
        // 12.5 GB at 12.5 GB/s ≈ 1 s point to point.
        assert!((net.message_seconds(12_500_000_000) - 1.0).abs() < 1e-3);
        // Broadcast to 1 node is free; to 2 nodes one round; to 5 nodes 3.
        assert_eq!(net.broadcast_seconds(1000, 1), 0.0);
        let one_round = net.message_seconds(1000);
        assert!((net.broadcast_seconds(1000, 2) - one_round).abs() < 1e-15);
        assert!((net.broadcast_seconds(1000, 5) - 3.0 * one_round).abs() < 1e-15);
        assert!((net.broadcast_seconds(1000, 8) - 3.0 * one_round).abs() < 1e-15);
    }

    #[test]
    fn nodes_run_concurrently() {
        let spec = DeviceSpec::a100();
        let mut c = ClusterSystem::homogeneous(spec.clone(), 2, 1, Interconnect::default());
        let mut cost = KernelCost::new(KernelClass::DistCalc, Format::Fp64);
        let model = crate::timing::TimingModel::new(spec);
        cost.bytes_read = (model.spec().mem_bandwidth * model.mem_efficiency(Format::Fp64)) as u64;
        c.node_mut(0).device_mut(0).submit_kernel(0, cost);
        c.node_mut(1).device_mut(0).submit_kernel(0, cost);
        assert!(
            (c.compute_makespan() - 1.0).abs() < 0.01,
            "{}",
            c.compute_makespan()
        );
        c.reset();
        assert_eq!(c.compute_makespan(), 0.0);
    }
}

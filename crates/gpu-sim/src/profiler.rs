//! Nsight-Compute-style utilization reporting (§V-C "Resource Utilization").
//!
//! From a [`CostLedger`] and a [`DeviceSpec`] this derives, per kernel class,
//! the achieved DRAM throughput as a fraction of peak and the achieved
//! simple-op rate — the same quantities the paper quotes ("dist_calc and
//! update_mat_prof use over 80% DRAM … sort_&_incl_scan uses over 80% L1/TEX
//! cache throughput and around 70% compute").

use crate::cost::{CostLedger, KernelClass};
use crate::device::DeviceSpec;
use std::fmt;

/// Utilization figures for one kernel class.
#[derive(Debug, Clone, Copy)]
pub struct ClassUtilization {
    /// Kernel class.
    pub class: KernelClass,
    /// Seconds attributed to the class.
    pub seconds: f64,
    /// Achieved DRAM throughput in bytes/second.
    pub dram_bytes_per_s: f64,
    /// Achieved DRAM throughput as a fraction of device peak.
    pub dram_fraction: f64,
    /// Achieved simple-op rate as a fraction of the SM op rate (proxy for
    /// the L1/compute utilization of the sort kernel).
    pub sm_fraction: f64,
    /// Achieved FLOP rate in FLOP/s.
    pub flops_per_s: f64,
}

/// A per-class utilization report.
#[derive(Debug, Clone)]
pub struct UtilizationReport {
    /// Device name the report refers to.
    pub device: &'static str,
    /// Rows, in kernel-class order.
    pub rows: Vec<ClassUtilization>,
}

impl UtilizationReport {
    /// Build a report from an accumulated ledger.
    pub fn from_ledger(spec: &DeviceSpec, ledger: &CostLedger) -> UtilizationReport {
        let mut rows = Vec::new();
        for (class, e) in ledger.rows() {
            if e.seconds <= 0.0 {
                continue;
            }
            let dram = e.bytes as f64 / e.seconds;
            rows.push(ClassUtilization {
                class,
                seconds: e.seconds,
                dram_bytes_per_s: dram,
                dram_fraction: dram / spec.mem_bandwidth,
                sm_fraction: (e.smem_ops as f64 / e.seconds) / spec.sm_op_rate,
                flops_per_s: e.flops as f64 / e.seconds,
            });
        }
        UtilizationReport {
            device: spec.name,
            rows,
        }
    }

    /// Row for a class, if present.
    pub fn class(&self, class: KernelClass) -> Option<&ClassUtilization> {
        self.rows.iter().find(|r| r.class == class)
    }
}

impl fmt::Display for UtilizationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Resource utilization on {}", self.device)?;
        writeln!(
            f,
            "{:<18} {:>9} {:>12} {:>8} {:>8}",
            "kernel", "time (s)", "DRAM (GB/s)", "DRAM %", "SM %"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<18} {:>9.3} {:>12.1} {:>7.1}% {:>7.1}%",
                r.class.label(),
                r.seconds,
                r.dram_bytes_per_s / 1e9,
                r.dram_fraction * 100.0,
                r.sm_fraction * 100.0,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::KernelCost;
    use crate::device::DeviceSpec;
    use crate::timing::TimingModel;
    use mdmp_precision::Format;

    #[test]
    fn dram_fraction_reflects_model_efficiency() {
        let spec = DeviceSpec::a100();
        let model = TimingModel::new(spec.clone());
        let mut cost = KernelCost::new(KernelClass::DistCalc, Format::Fp64);
        cost.bytes_read = 2 * (1 << 36);
        cost.bytes_written = 1 << 36;
        let secs = model.kernel_seconds(&cost);
        let mut ledger = CostLedger::new();
        ledger.record(&cost, secs);
        let report = UtilizationReport::from_ledger(&spec, &ledger);
        let row = report.class(KernelClass::DistCalc).unwrap();
        // A pure memory-bound FP64 kernel achieves the calibrated ~82%.
        assert!(
            (row.dram_fraction - 0.82).abs() < 0.02,
            "got {}",
            row.dram_fraction
        );
    }

    #[test]
    fn report_skips_empty_classes_and_prints() {
        let spec = DeviceSpec::a100();
        let mut ledger = CostLedger::new();
        let cost = KernelCost::new(KernelClass::Merge, Format::Fp64);
        ledger.record(&cost, 0.0);
        let report = UtilizationReport::from_ledger(&spec, &ledger);
        assert!(report.rows.is_empty());
        let mut ledger2 = CostLedger::new();
        let mut c = KernelCost::new(KernelClass::SortScan, Format::Fp16);
        c.smem_ops = 1 << 30;
        ledger2.record(&c, 1.0);
        let report2 = UtilizationReport::from_ledger(&spec, &ledger2);
        let text = report2.to_string();
        assert!(text.contains("sort_&_incl_scan"));
        assert!(report2.class(KernelClass::SortScan).unwrap().sm_fraction > 0.0);
    }
}

//! Kernel cost descriptors and per-kernel-class accounting.
//!
//! Every simulated kernel reports what it did in hardware-neutral units;
//! [`crate::TimingModel`] turns a [`KernelCost`] into seconds for a concrete
//! device. Aggregation by [`KernelClass`] produces the per-kernel breakdowns
//! of Fig. 4 and Fig. 5.

use mdmp_precision::Format;
use std::collections::BTreeMap;

/// The kernel taxonomy of the paper's Pseudocode 1 plus host-side steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KernelClass {
    /// `precalculation` — rolling statistics and initial QT row/column.
    Precalc,
    /// `dist_calc` — the streaming-dot-product distance row update (Eq. 1).
    DistCalc,
    /// `sort_&_incl_scan` — Bitonic sort + inclusive scan along dimensions.
    SortScan,
    /// `update_mat_prof` — min/argmin merge into the running profile.
    UpdateProfile,
    /// The fused per-row pass: `dist_calc + sort_&_incl_scan +
    /// update_mat_prof` as one launch with grid-wide syncs between phases.
    FusedRow,
    /// Host→device or device→host transfer.
    Transfer,
    /// CPU-side merge of tile results (Pseudocode 2, line 7).
    Merge,
}

impl KernelClass {
    /// All classes in the paper's breakdown order.
    pub const ALL: [KernelClass; 7] = [
        KernelClass::Precalc,
        KernelClass::DistCalc,
        KernelClass::SortScan,
        KernelClass::UpdateProfile,
        KernelClass::FusedRow,
        KernelClass::Transfer,
        KernelClass::Merge,
    ];

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            KernelClass::Precalc => "precalculation",
            KernelClass::DistCalc => "dist_calc",
            KernelClass::SortScan => "sort_&_incl_scan",
            KernelClass::UpdateProfile => "update_mat_prof",
            KernelClass::FusedRow => "fused_row",
            KernelClass::Transfer => "transfer",
            KernelClass::Merge => "merge",
        }
    }
}

/// What one (possibly aggregated) kernel execution did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCost {
    /// Which pipeline step this belongs to.
    pub class: KernelClass,
    /// Arithmetic/storage format of the kernel's working data.
    pub format: Format,
    /// Bytes read from device memory.
    pub bytes_read: u64,
    /// Bytes written to device memory.
    pub bytes_written: u64,
    /// Floating-point operations (in the kernel's format).
    pub flops: u64,
    /// Shared-memory-resident simple operations (compare-exchange, scan
    /// adds) — the currency of the sort kernel.
    pub smem_ops: u64,
    /// Number of kernel launches folded into this cost.
    pub launches: u64,
    /// Number of coarse-grained group barriers executed.
    pub barriers: u64,
    /// Tensor-core MMA input format when the kernel's FLOPs run on the
    /// tensor cores instead of the vector pipelines; `None` otherwise.
    /// `format` stays the accumulator/storage format (FP32 for TC modes).
    pub tc: Option<Format>,
    /// Shared-memory fragment bytes staged into the MMA units (on-chip
    /// traffic — deliberately *not* part of [`KernelCost::bytes`]).
    pub frag_bytes: u64,
}

impl KernelCost {
    /// A zeroed cost for the given class and format.
    pub fn new(class: KernelClass, format: Format) -> KernelCost {
        KernelCost {
            class,
            format,
            bytes_read: 0,
            bytes_written: 0,
            flops: 0,
            smem_ops: 0,
            launches: 0,
            barriers: 0,
            tc: None,
            frag_bytes: 0,
        }
    }

    /// Total device-memory traffic.
    pub fn bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Component-wise accumulation (class/format must match).
    ///
    /// # Panics
    /// Panics if `other` has a different class or format.
    pub fn merge(&mut self, other: &KernelCost) {
        assert_eq!(self.class, other.class, "cannot merge costs across classes");
        assert_eq!(
            self.format, other.format,
            "cannot merge costs across formats"
        );
        assert_eq!(
            self.tc, other.tc,
            "cannot merge tensor-core and vector costs"
        );
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.flops += other.flops;
        self.smem_ops += other.smem_ops;
        self.launches += other.launches;
        self.barriers += other.barriers;
        self.frag_bytes += other.frag_bytes;
    }

    /// Fuse several kernel launches into a single [`KernelClass::FusedRow`]
    /// launch: all extensive device-side work (traffic, FLOPs, shared-memory
    /// ops) is preserved, the launches of the component kernels collapse to
    /// **one**, and each eliminated launch boundary becomes a grid-wide
    /// barrier (a fused kernel still has to synchronize between its phases —
    /// a cooperative grid sync — so fusion trades launch overhead for
    /// barrier overhead rather than deleting the synchronization outright).
    ///
    /// # Panics
    /// Panics if `parts` is empty or mixes formats.
    pub fn fuse(parts: &[KernelCost]) -> KernelCost {
        let first = parts.first().expect("fuse requires at least one part");
        let mut fused = KernelCost::new(KernelClass::FusedRow, first.format);
        fused.launches = 1;
        fused.tc = first.tc;
        for part in parts {
            assert_eq!(
                part.format, first.format,
                "cannot fuse costs across formats"
            );
            assert_eq!(part.tc, first.tc, "cannot fuse tensor-core and vector");
            fused.bytes_read += part.bytes_read;
            fused.bytes_written += part.bytes_written;
            fused.flops += part.flops;
            fused.smem_ops += part.smem_ops;
            fused.barriers += part.barriers;
            fused.frag_bytes += part.frag_bytes;
        }
        // One grid sync per eliminated launch boundary.
        fused.barriers += (parts.len() as u64).saturating_sub(1);
        fused
    }

    /// Scale every extensive quantity by an integer factor — used to fold
    /// `n` identical per-iteration launches into one record.
    pub fn repeated(mut self, times: u64) -> KernelCost {
        self.bytes_read *= times;
        self.bytes_written *= times;
        self.flops *= times;
        self.smem_ops *= times;
        self.launches *= times;
        self.barriers *= times;
        self.frag_bytes *= times;
        self
    }
}

/// Accumulated cost and modelled time per kernel class.
#[derive(Debug, Clone, Default)]
pub struct CostLedger {
    entries: BTreeMap<KernelClass, LedgerEntry>,
}

/// One row of a [`CostLedger`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LedgerEntry {
    /// Modelled seconds attributed to this class.
    pub seconds: f64,
    /// Total device-memory bytes moved.
    pub bytes: u64,
    /// Total floating point operations.
    pub flops: u64,
    /// Total shared-memory ops.
    pub smem_ops: u64,
    /// Total kernel launches.
    pub launches: u64,
    /// Total group barriers.
    pub barriers: u64,
}

impl CostLedger {
    /// An empty ledger.
    pub fn new() -> CostLedger {
        CostLedger::default()
    }

    /// Record one kernel cost with its modelled duration.
    pub fn record(&mut self, cost: &KernelCost, seconds: f64) {
        let e = self.entries.entry(cost.class).or_default();
        e.seconds += seconds;
        e.bytes += cost.bytes();
        e.flops += cost.flops;
        e.smem_ops += cost.smem_ops;
        e.launches += cost.launches;
        e.barriers += cost.barriers;
    }

    /// Fold another ledger into this one.
    pub fn absorb(&mut self, other: &CostLedger) {
        for (class, e) in &other.entries {
            let mine = self.entries.entry(*class).or_default();
            mine.seconds += e.seconds;
            mine.bytes += e.bytes;
            mine.flops += e.flops;
            mine.smem_ops += e.smem_ops;
            mine.launches += e.launches;
            mine.barriers += e.barriers;
        }
    }

    /// The entry for a class, if any cost was recorded.
    pub fn entry(&self, class: KernelClass) -> Option<&LedgerEntry> {
        self.entries.get(&class)
    }

    /// Modelled seconds for one class (0 if absent).
    pub fn seconds(&self, class: KernelClass) -> f64 {
        self.entries.get(&class).map_or(0.0, |e| e.seconds)
    }

    /// Sum of modelled seconds across all classes — the serialized total;
    /// overlap-aware totals come from [`crate::DeviceTimeline::makespan`].
    pub fn total_seconds(&self) -> f64 {
        self.entries.values().map(|e| e.seconds).sum()
    }

    /// Iterate over (class, entry) rows in breakdown order.
    pub fn rows(&self) -> impl Iterator<Item = (KernelClass, &LedgerEntry)> {
        self.entries.iter().map(|(c, e)| (*c, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(class: KernelClass) -> KernelCost {
        KernelCost {
            class,
            format: Format::Fp64,
            bytes_read: 100,
            bytes_written: 50,
            flops: 10,
            smem_ops: 5,
            launches: 1,
            barriers: 2,
            tc: None,
            frag_bytes: 0,
        }
    }

    #[test]
    fn cost_merge_and_repeat() {
        let mut a = sample(KernelClass::DistCalc);
        let b = sample(KernelClass::DistCalc);
        a.merge(&b);
        assert_eq!(a.bytes(), 300);
        assert_eq!(a.launches, 2);
        let r = sample(KernelClass::DistCalc).repeated(10);
        assert_eq!(r.bytes_read, 1000);
        assert_eq!(r.barriers, 20);
    }

    #[test]
    fn tc_and_frag_traffic_accounting() {
        let mut a = sample(KernelClass::DistCalc);
        a.tc = Some(Format::Fp16);
        a.frag_bytes = 64;
        let r = a.repeated(4);
        assert_eq!(r.frag_bytes, 256);
        assert_eq!(r.tc, Some(Format::Fp16));
        let mut merged = a;
        merged.merge(&a);
        assert_eq!(merged.frag_bytes, 128);
        // Fragment traffic is on-chip: it never counts as DRAM bytes.
        assert_eq!(merged.bytes(), 300);
    }

    #[test]
    #[should_panic(expected = "tensor-core")]
    fn merge_rejects_tc_mismatch() {
        let mut a = sample(KernelClass::DistCalc);
        let mut b = a;
        b.tc = Some(Format::Fp16);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "across classes")]
    fn merge_rejects_class_mismatch() {
        let mut a = sample(KernelClass::DistCalc);
        a.merge(&sample(KernelClass::SortScan));
    }

    #[test]
    fn fuse_preserves_work_and_collapses_launches() {
        let parts = [
            sample(KernelClass::DistCalc),
            sample(KernelClass::SortScan),
            sample(KernelClass::UpdateProfile),
        ];
        let fused = KernelCost::fuse(&parts);
        assert_eq!(fused.class, KernelClass::FusedRow);
        assert_eq!(fused.bytes(), 3 * 150);
        assert_eq!(fused.flops, 30);
        assert_eq!(fused.smem_ops, 15);
        assert_eq!(fused.launches, 1, "one launch instead of three");
        // Component barriers survive, plus one grid sync per eliminated
        // launch boundary.
        assert_eq!(fused.barriers, 3 * 2 + 2);
    }

    #[test]
    #[should_panic(expected = "across formats")]
    fn fuse_rejects_format_mismatch() {
        let mut b = sample(KernelClass::SortScan);
        b.format = Format::Fp16;
        KernelCost::fuse(&[sample(KernelClass::DistCalc), b]);
    }

    #[test]
    fn ledger_accumulates_and_totals() {
        let mut ledger = CostLedger::new();
        ledger.record(&sample(KernelClass::DistCalc), 1.5);
        ledger.record(&sample(KernelClass::DistCalc), 0.5);
        ledger.record(&sample(KernelClass::SortScan), 2.0);
        assert_eq!(ledger.seconds(KernelClass::DistCalc), 2.0);
        assert_eq!(ledger.total_seconds(), 4.0);
        assert_eq!(ledger.entry(KernelClass::DistCalc).unwrap().bytes, 300);
        assert_eq!(ledger.seconds(KernelClass::Merge), 0.0);
    }

    #[test]
    fn ledger_absorb() {
        let mut a = CostLedger::new();
        a.record(&sample(KernelClass::Precalc), 1.0);
        let mut b = CostLedger::new();
        b.record(&sample(KernelClass::Precalc), 2.0);
        b.record(&sample(KernelClass::Merge), 0.25);
        a.absorb(&b);
        assert_eq!(a.seconds(KernelClass::Precalc), 3.0);
        assert_eq!(a.seconds(KernelClass::Merge), 0.25);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(KernelClass::SortScan.label(), "sort_&_incl_scan");
        assert_eq!(KernelClass::DistCalc.label(), "dist_calc");
    }
}

//! Scenario tests of the device timeline: realistic multi-tile pipelines
//! and their overlap behaviour.

use mdmp_gpu_sim::{DeviceSpec, GpuSystem, KernelClass, KernelCost, TimingModel};
use mdmp_precision::Format;

fn seconds_of_dram(model: &TimingModel, secs: f64, format: Format) -> KernelCost {
    let bw = model.spec().mem_bandwidth * model.mem_efficiency(format);
    let mut c = KernelCost::new(KernelClass::DistCalc, format);
    c.bytes_read = (secs * bw) as u64;
    c
}

#[test]
fn pipelined_tiles_hide_all_interior_transfers() {
    // 8 tiles, each 0.2 s H2D + 1 s compute + 0.1 s D2H on its own stream:
    // only the first H2D and last D2H stick out of the compute train.
    let spec = DeviceSpec::a100();
    let model = TimingModel::new(spec.clone());
    let mut sys = GpuSystem::homogeneous(spec.clone(), 1);
    let k = seconds_of_dram(&model, 1.0, Format::Fp64);
    let h2d = (0.2 * spec.h2d_bandwidth) as u64;
    let d2h = (0.1 * spec.d2h_bandwidth) as u64;
    for tile in 0..8usize {
        let dev = sys.device_mut(0);
        dev.submit_transfer(tile, h2d, true);
        dev.submit_kernel(tile, k);
        dev.submit_transfer(tile, d2h, false);
    }
    let makespan = sys.makespan();
    // Ideal: 0.2 (first copy) + 8x1.0 compute + 0.1 (last copy) = 8.3 s.
    assert!(
        (8.25..8.6).contains(&makespan),
        "expected ~8.3 s pipelined, got {makespan}"
    );
}

#[test]
fn copy_engines_are_independent_directions() {
    let spec = DeviceSpec::a100();
    let mut sys = GpuSystem::homogeneous(spec.clone(), 1);
    let bytes_1s_up = spec.h2d_bandwidth as u64;
    let bytes_1s_down = spec.d2h_bandwidth as u64;
    // Stream 0 uploads while stream 1 downloads: full overlap.
    sys.device_mut(0).submit_transfer(0, bytes_1s_up, true);
    sys.device_mut(0).submit_transfer(1, bytes_1s_down, false);
    assert!(
        sys.makespan() < 1.1,
        "up/down engines overlap: {}",
        sys.makespan()
    );
    // Two uploads on different streams share the H2D engine: serialize.
    sys.reset();
    sys.device_mut(0).submit_transfer(0, bytes_1s_up, true);
    sys.device_mut(0).submit_transfer(1, bytes_1s_up, true);
    assert!(
        sys.makespan() > 1.9,
        "same engine serializes: {}",
        sys.makespan()
    );
}

#[test]
fn ledger_times_equal_timeline_busy_time_for_serial_work() {
    let spec = DeviceSpec::v100();
    let model = TimingModel::new(spec.clone());
    let mut sys = GpuSystem::homogeneous(spec, 1);
    let k = seconds_of_dram(&model, 0.5, Format::Fp32);
    for i in 0..4 {
        sys.device_mut(0).submit_kernel(i, k);
    }
    let ledger_total = sys.total_ledger().total_seconds();
    let busy = sys.device(0).timeline.compute_busy();
    assert!((ledger_total - busy).abs() < 1e-9);
    assert!((busy - 2.0).abs() < 0.01);
}

#[test]
fn format_mixture_on_one_device_accumulates_per_class() {
    let spec = DeviceSpec::a100();
    let model = TimingModel::new(spec.clone());
    let mut sys = GpuSystem::homogeneous(spec, 1);
    sys.device_mut(0)
        .submit_kernel(0, seconds_of_dram(&model, 1.0, Format::Fp64));
    sys.device_mut(0)
        .submit_kernel(0, seconds_of_dram(&model, 1.0, Format::Fp16));
    let ledger = sys.total_ledger();
    let dist = ledger.entry(KernelClass::DistCalc).unwrap();
    assert!((dist.seconds - 2.0).abs() < 0.01);
    // The FP16 kernel moved fewer bytes for the same seconds.
    assert!(dist.bytes > 0);
}

#[test]
fn heterogeneous_system_makespan_follows_the_slowest_device() {
    let mut sys = GpuSystem::new(vec![DeviceSpec::a100(), DeviceSpec::v100()]);
    // The same physical cost lands on both devices.
    let mut cost = KernelCost::new(KernelClass::DistCalc, Format::Fp64);
    cost.bytes_read = 1_275_000_000_000; // ~1 s on A100, longer on V100
    sys.device_mut(0).submit_kernel(0, cost);
    sys.device_mut(1).submit_kernel(0, cost);
    let a = sys.device(0).timeline.makespan();
    let v = sys.device(1).timeline.makespan();
    assert!(v > a, "V100 must be slower for equal work");
    assert!((sys.makespan() - v).abs() < 1e-12);
}

//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API this workspace's benches
//! use (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`, `bench_with_input`, `Throughput`, `BenchmarkId`) as a
//! small wall-clock harness: each benchmark runs a short warm-up, then
//! `sample_size` timed samples, and prints the median time per iteration.
//! No statistics, no plots — enough to run `cargo bench` offline and get
//! stable relative numbers.

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id `name/parameter`.
    pub fn new<P: fmt::Display>(name: impl Into<String>, parameter: P) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// The timing loop handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, collecting `sample_size` samples after a warm-up.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up + calibration: find an iteration count that takes ≥ ~1 ms.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        self.samples.clear();
        for _ in 0..self.sample_size.max(1) {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }

    fn median(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        Some(sorted[sorted.len() / 2])
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Set the target measurement time. Accepted for API compatibility;
    /// this harness sizes work by sample count instead.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotate the group's throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    /// Run one benchmark with an auxiliary input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b);
        self
    }

    fn report(&self, id: &str, b: &Bencher) {
        match b.median() {
            Some(t) => {
                let per_iter = t.as_secs_f64();
                let rate = match self.throughput {
                    Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                        format!("  {:>12.0} elem/s", n as f64 / per_iter)
                    }
                    Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                        format!("  {:>12.0} B/s", n as f64 / per_iter)
                    }
                    _ => String::new(),
                };
                println!("{}/{id}: {per_iter:>12.3e} s/iter{rate}", self.name);
            }
            None => println!("{}/{id}: no samples", self.name),
        }
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(name).bench_function("bench", f);
        self
    }
}

/// Define a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.throughput(Throughput::Elements(16));
        group.bench_function(BenchmarkId::new("sum", 16), |b| {
            b.iter(|| (0..16u64).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    criterion_group!(stub_group, sample_bench);

    #[test]
    fn harness_runs() {
        stub_group();
    }
}

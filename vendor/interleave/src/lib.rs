//! # interleave — a miniature deterministic-interleaving model checker
//!
//! A vendored mini-[loom]: small concurrent *models* are executed many
//! times, each time under a different thread schedule, and every schedule
//! is driven deterministically by the explorer. The model uses this
//! crate's [`Mutex`], [`Condvar`], [`AtomicUsize`]/[`AtomicBool`] and
//! [`spawn`]/[`JoinHandle::join`] in place of `std::sync` — every one of
//! those operations is a *yield point* where the explorer picks which
//! thread runs next.
//!
//! Exploration is a bounded depth-first search over the schedule tree:
//! the first execution always picks the lowest-numbered enabled thread,
//! and each subsequent execution backtracks the most recent decision that
//! still has an untried alternative. When the DFS budget
//! ([`Config::max_schedules`]) runs out before the tree is exhausted, an
//! optional seeded-random tail ([`Config::random_tail`]) samples further
//! schedules — deterministically, from [`Config::seed`] — so rare deep
//! interleavings still get coverage.
//!
//! What the checker reports, for **every explored schedule**:
//!
//! * **assertion failures** — any panic inside the model (including
//!   `assert!`) aborts exploration and re-panics with the failing
//!   schedule's decision trace;
//! * **deadlock** — no thread is runnable, yet not all have finished
//!   (this is also how a *lost wakeup* manifests: a `wait` whose `notify`
//!   fired early is never woken again);
//! * **livelock** — an execution exceeding [`Config::max_steps`] steps.
//!
//! The primitives are sequentially consistent: one thread runs at a time
//! and every shared-memory operation is a scheduling point, so the
//! explored semantics are an *over*-approximation of what a `Relaxed`
//! atomic permits on hardware but exactly what `Mutex`/`Condvar` code
//! observes. That is the right level for the structures modeled here
//! (single-flight, pool lease, reorder buffer), whose invariants are
//! lock-protocol properties, not fence orderings.
//!
//! [loom]: https://github.com/tokio-rs/loom
//!
//! ```
//! use interleave::{explore, Config};
//! use std::sync::Arc;
//!
//! let report = explore(Config::default(), || {
//!     let counter = Arc::new(interleave::AtomicUsize::new(0));
//!     let handles: Vec<_> = (0..2)
//!         .map(|_| {
//!             let counter = Arc::clone(&counter);
//!             interleave::spawn(move || {
//!                 counter.fetch_add(1);
//!             })
//!         })
//!         .collect();
//!     for h in handles {
//!         h.join();
//!     }
//!     assert_eq!(counter.load(), 2);
//! });
//! assert!(report.complete, "two increments fully explored");
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Exploration budget and determinism knobs.
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum schedules explored by the depth-first search.
    pub max_schedules: usize,
    /// Additional schedules sampled with seeded-random choices after the
    /// DFS budget is spent (ignored when the DFS completes the tree).
    pub random_tail: usize,
    /// Per-execution step bound; exceeding it is reported as a livelock.
    pub max_steps: usize,
    /// Seed for the random tail.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            max_schedules: 4096,
            random_tail: 0,
            max_steps: 20_000,
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl Config {
    /// A small budget for smoke tests (and Miri, where executions are
    /// expensive): explores `n` schedules, no random tail.
    pub fn quick(n: usize) -> Config {
        Config {
            max_schedules: n,
            ..Config::default()
        }
    }
}

/// What an exploration covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Distinct schedules executed (DFS + random tail).
    pub schedules: usize,
    /// Whether the DFS exhausted the whole schedule tree within budget.
    pub complete: bool,
    /// Length of the longest explored schedule, in scheduling decisions.
    pub max_depth: usize,
}

/// Why a thread cannot run right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Waiting {
    /// Wants the mutex; runnable once it is free (the scheduler grants
    /// ownership atomically with the scheduling decision).
    Mutex(usize),
    /// Parked on a condvar; only a notify can move it on (to `Mutex`).
    Cond(usize, usize),
    /// Waiting for another thread to finish.
    Join(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    Runnable,
    Blocked(Waiting),
    Finished,
}

#[derive(Debug)]
struct ExecInner {
    /// The one thread currently allowed to run, or `None` while the
    /// scheduler decides.
    active: Option<usize>,
    threads: Vec<TState>,
    /// Mutex owner table (`None` = free).
    mutexes: Vec<Option<usize>>,
    n_condvars: usize,
    /// First model panic (message), if any.
    panic_msg: Option<String>,
    /// Set when the explorer gives up on this execution; parked threads
    /// unwind out instead of waiting forever.
    abandoned: bool,
}

/// One execution's shared scheduling state.
struct Exec {
    inner: StdMutex<ExecInner>,
    cv: StdCondvar,
    os_handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Exec>, usize)>> = const { RefCell::new(None) };
}

fn current() -> (Arc<Exec>, usize) {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            .expect("interleave primitive used outside explore()")
    })
}

/// Panic payload used to unwind parked threads of an abandoned execution.
struct Abandoned;

impl Exec {
    fn new() -> Exec {
        Exec {
            inner: StdMutex::new(ExecInner {
                active: None,
                threads: Vec::new(),
                mutexes: Vec::new(),
                n_condvars: 0,
                panic_msg: None,
                abandoned: false,
            }),
            cv: StdCondvar::new(),
            os_handles: StdMutex::new(Vec::new()),
        }
    }

    fn lock_inner(&self) -> StdMutexGuard<'_, ExecInner> {
        // The inner mutex is only poisoned if the *scheduler* panicked,
        // at which point the whole exploration is already failing.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Transition `me` to `state` (releasing `release` first, if given),
    /// hand control back to the scheduler, and block until scheduled
    /// again.
    fn block_on(&self, me: usize, state: TState, release: Option<usize>) {
        let mut g = self.lock_inner();
        if let Some(m) = release {
            g.mutexes[m] = None;
        }
        g.threads[me] = state;
        g.active = None;
        self.cv.notify_all();
        while g.active != Some(me) {
            if g.abandoned {
                drop(g);
                std::panic::panic_any(Abandoned);
            }
            g = self.cv.wait(g).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// A plain yield point: let the scheduler interleave other threads.
    fn yield_op(&self, me: usize) {
        self.block_on(me, TState::Runnable, None);
    }

    /// Register a new controlled thread; returns its id.
    fn register_thread(&self) -> usize {
        let mut g = self.lock_inner();
        g.threads.push(TState::Runnable);
        g.threads.len() - 1
    }

    fn thread_done(&self, me: usize, panic_msg: Option<String>) {
        let mut g = self.lock_inner();
        if g.panic_msg.is_none() {
            g.panic_msg = panic_msg;
        }
        g.threads[me] = TState::Finished;
        if g.active == Some(me) {
            g.active = None;
        }
        self.cv.notify_all();
    }
}

/// The entry point of every controlled thread (including thread 0, which
/// runs the model closure itself).
fn controlled_entry<F: FnOnce()>(exec: Arc<Exec>, me: usize, body: F) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), me)));
    // Wait to be scheduled for the first time.
    {
        let mut g = exec.lock_inner();
        while g.active != Some(me) {
            if g.abandoned {
                drop(g);
                exec.thread_done(me, None);
                return;
            }
            g = exec.cv.wait(g).unwrap_or_else(|p| p.into_inner());
        }
    }
    let result = catch_unwind(AssertUnwindSafe(body));
    let panic_msg = match result {
        Ok(()) => None,
        Err(payload) => {
            if payload.downcast_ref::<Abandoned>().is_some() {
                None // scheduler-initiated unwind, not a model failure
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                Some((*s).to_string())
            } else if let Some(s) = payload.downcast_ref::<String>() {
                Some(s.clone())
            } else {
                Some("model panicked with a non-string payload".to_string())
            }
        }
    };
    exec.thread_done(me, panic_msg);
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Spawn a controlled model thread. Must be called from inside a model.
pub fn spawn<F: FnOnce() + Send + 'static>(f: F) -> JoinHandle {
    let (exec, me) = current();
    let id = exec.register_thread();
    let exec2 = Arc::clone(&exec);
    let os = std::thread::Builder::new()
        .name(format!("interleave-{id}"))
        .spawn(move || controlled_entry(Arc::clone(&exec2), id, f))
        .expect("spawn controlled thread");
    exec.os_handles
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .push(os);
    // Spawning is itself a yield point: the child may run before the
    // parent's next instruction.
    exec.yield_op(me);
    JoinHandle { id }
}

/// Handle to a controlled thread; join is a blocking yield point.
pub struct JoinHandle {
    id: usize,
}

impl JoinHandle {
    /// Block until the thread finishes. A panic in the target thread is
    /// reported by the explorer, not by `join`.
    pub fn join(self) {
        let (exec, me) = current();
        exec.block_on(me, TState::Blocked(Waiting::Join(self.id)), None);
    }
}

/// Let the scheduler interleave other threads here (an explicit yield
/// point with no memory effect).
pub fn yield_now() {
    let (exec, me) = current();
    exec.yield_op(me);
}

/// A model mutex: mutual exclusion is enforced by the scheduler, so a
/// blocked `lock` parks the thread at a yield point instead of spinning.
pub struct Mutex<T> {
    id: usize,
    data: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// A new model mutex holding `value`. Must be created inside a model.
    pub fn new(value: T) -> Mutex<T> {
        let (exec, _) = current();
        let mut g = exec.lock_inner();
        g.mutexes.push(None);
        Mutex {
            id: g.mutexes.len() - 1,
            data: StdMutex::new(value),
        }
    }

    /// Acquire the mutex, blocking (at a yield point) while it is held.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let (exec, me) = current();
        // The scheduler grants ownership atomically with scheduling us.
        exec.block_on(me, TState::Blocked(Waiting::Mutex(self.id)), None);
        let std = self.data.lock().unwrap_or_else(|p| p.into_inner());
        MutexGuard {
            mutex: self,
            std: Some(std),
        }
    }
}

/// RAII guard of a [`Mutex`]; dropping it releases the lock at a yield
/// point.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    std: Option<StdMutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.std.as_ref().expect("guard already released")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std.as_mut().expect("guard already released")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let Some(std) = self.std.take() else { return };
        drop(std);
        let (exec, me) = current();
        {
            let mut g = exec.lock_inner();
            g.mutexes[self.mutex.id] = None;
            if g.abandoned {
                return;
            }
        }
        if std::thread::panicking() {
            // Unwinding out of the model (assertion failure): release
            // without a yield so the unwind cannot panic again.
            return;
        }
        exec.yield_op(me);
    }
}

/// A model condition variable with deterministic wakeups and no spurious
/// ones — a lost wakeup therefore deadlocks *every* schedule that hits it
/// instead of hiding behind spurious-wakeup recovery.
pub struct Condvar {
    id: usize,
}

impl Condvar {
    /// A new model condvar. Must be created inside a model.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Condvar {
        let (exec, _) = current();
        let mut g = exec.lock_inner();
        g.n_condvars += 1;
        Condvar {
            id: g.n_condvars - 1,
        }
    }

    /// Atomically release the guard's mutex and park until notified, then
    /// reacquire the mutex and return a fresh guard.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let mutex = guard.mutex;
        let std = guard.std.take().expect("guard already released");
        drop(std);
        drop(guard); // std is None: no release side effects
        let (exec, me) = current();
        exec.block_on(
            me,
            TState::Blocked(Waiting::Cond(self.id, mutex.id)),
            Some(mutex.id),
        );
        // Scheduled again means a notify moved us to the mutex queue and
        // the scheduler granted us ownership.
        let std = mutex.data.lock().unwrap_or_else(|p| p.into_inner());
        MutexGuard {
            mutex,
            std: Some(std),
        }
    }

    /// Wake every thread parked on this condvar (they move to the mutex
    /// queue). A yield point.
    pub fn notify_all(&self) {
        let (exec, me) = current();
        {
            let mut g = exec.lock_inner();
            for t in g.threads.iter_mut() {
                if let TState::Blocked(Waiting::Cond(cv, m)) = *t {
                    if cv == self.id {
                        *t = TState::Blocked(Waiting::Mutex(m));
                    }
                }
            }
        }
        exec.yield_op(me);
    }

    /// Wake the single longest-registered parked thread (lowest thread
    /// id), if any. A yield point. Deliberately deterministic, so a model
    /// that *needs* `notify_all` fails the same way on every run.
    pub fn notify_one(&self) {
        let (exec, me) = current();
        {
            let mut g = exec.lock_inner();
            if let Some(t) = g
                .threads
                .iter_mut()
                .find(|t| matches!(**t, TState::Blocked(Waiting::Cond(cv, _)) if cv == self.id))
            {
                let TState::Blocked(Waiting::Cond(_, m)) = *t else {
                    unreachable!()
                };
                *t = TState::Blocked(Waiting::Mutex(m));
            }
        }
        exec.yield_op(me);
    }
}

macro_rules! model_atomic {
    ($(#[$doc:meta])* $name:ident, $ty:ty) => {
        $(#[$doc])*
        pub struct $name(StdMutex<$ty>);

        impl $name {
            /// A new atomic. May be created anywhere (no registration).
            pub fn new(v: $ty) -> $name {
                $name(StdMutex::new(v))
            }

            fn cell(&self) -> StdMutexGuard<'_, $ty> {
                self.0.lock().unwrap_or_else(|p| p.into_inner())
            }

            /// Atomic load (a yield point).
            pub fn load(&self) -> $ty {
                yield_now();
                *self.cell()
            }

            /// Atomic store (a yield point).
            pub fn store(&self, v: $ty) {
                yield_now();
                *self.cell() = v;
            }
        }
    };
}

model_atomic! {
    /// A model `AtomicUsize`; every operation is a yield point.
    AtomicUsize, usize
}

impl AtomicUsize {
    /// Atomic fetch-add returning the previous value (a yield point).
    /// Wraps on overflow, like the hardware atomic it models.
    pub fn fetch_add(&self, n: usize) -> usize {
        yield_now();
        let mut g = self.cell();
        let prev = *g;
        *g = prev.wrapping_add(n);
        prev
    }

    /// Atomic fetch-sub returning the previous value (a yield point).
    /// Wraps on underflow, like the hardware atomic it models.
    pub fn fetch_sub(&self, n: usize) -> usize {
        yield_now();
        let mut g = self.cell();
        let prev = *g;
        *g = prev.wrapping_sub(n);
        prev
    }
}

model_atomic! {
    /// A model `AtomicBool`; every operation is a yield point.
    AtomicBool, bool
}

/// Outcome of one execution, private to the explorer.
enum ExecOutcome {
    /// All threads finished; the recorded decisions are returned.
    Done,
    /// A model thread panicked.
    Panic(String),
    /// No thread runnable, not all finished.
    Deadlock(Vec<(usize, String)>),
    /// Step bound exceeded.
    Livelock,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Run one execution of `model` under the schedule `prefix` (DFS ranks;
/// positions beyond the prefix pick rank 0, or seeded-random ranks when
/// `random_seed` is set). Returns the outcome and the full decision
/// record `(rank, enabled_count)` per step.
fn run_once<F>(
    cfg: &Config,
    model: &Arc<F>,
    prefix: &[usize],
    random_seed: Option<u64>,
) -> (ExecOutcome, Vec<(usize, usize)>)
where
    F: Fn() + Send + Sync + 'static,
{
    let exec = Arc::new(Exec::new());
    let root_id = exec.register_thread();
    debug_assert_eq!(root_id, 0);
    let exec2 = Arc::clone(&exec);
    let model2 = Arc::clone(model);
    let os = std::thread::Builder::new()
        .name("interleave-0".into())
        .spawn(move || controlled_entry(Arc::clone(&exec2), root_id, move || model2()))
        .expect("spawn model root thread");
    exec.os_handles
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .push(os);

    let mut choices: Vec<(usize, usize)> = Vec::new();
    let mut rng = random_seed.unwrap_or(0);
    let outcome = loop {
        let mut g = exec.lock_inner();
        while g.active.is_some() {
            g = exec.cv.wait(g).unwrap_or_else(|p| p.into_inner());
        }
        if let Some(msg) = g.panic_msg.take() {
            g.abandoned = true;
            exec.cv.notify_all();
            break ExecOutcome::Panic(msg);
        }
        let enabled: Vec<usize> = g
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| match s {
                TState::Runnable => true,
                TState::Blocked(Waiting::Mutex(m)) => g.mutexes[*m].is_none(),
                TState::Blocked(Waiting::Cond(_, _)) => false,
                TState::Blocked(Waiting::Join(t)) => g.threads[*t] == TState::Finished,
                TState::Finished => false,
            })
            .map(|(i, _)| i)
            .collect();
        if enabled.is_empty() {
            if g.threads.iter().all(|t| *t == TState::Finished) {
                break ExecOutcome::Done;
            }
            let stuck: Vec<(usize, String)> = g
                .threads
                .iter()
                .enumerate()
                .filter(|(_, s)| !matches!(s, TState::Finished))
                .map(|(i, s)| (i, format!("{s:?}")))
                .collect();
            g.abandoned = true;
            exec.cv.notify_all();
            break ExecOutcome::Deadlock(stuck);
        }
        if choices.len() >= cfg.max_steps {
            g.abandoned = true;
            exec.cv.notify_all();
            break ExecOutcome::Livelock;
        }
        let rank = match prefix.get(choices.len()) {
            Some(&r) => r.min(enabled.len() - 1),
            None => match random_seed {
                Some(_) => {
                    rng = splitmix64(rng);
                    (rng % enabled.len() as u64) as usize
                }
                None => 0,
            },
        };
        choices.push((rank, enabled.len()));
        let id = enabled[rank];
        if let TState::Blocked(Waiting::Mutex(m)) = g.threads[id] {
            g.mutexes[m] = Some(id);
        }
        g.threads[id] = TState::Runnable;
        g.active = Some(id);
        exec.cv.notify_all();
    };

    // Every parked thread either finished normally or unwinds on the
    // abandoned flag, so joining is always bounded.
    let handles: Vec<_> = exec
        .os_handles
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .drain(..)
        .collect();
    for h in handles {
        let _ = h.join();
    }
    (outcome, choices)
}

fn fail(kind: &str, detail: &str, trace: &[(usize, usize)], schedule_no: usize) -> ! {
    let ranks: Vec<String> = trace.iter().map(|(r, n)| format!("{r}/{n}")).collect();
    panic!(
        "interleave: {kind} in schedule #{schedule_no} (decision trace [{}]): {detail}",
        ranks.join(" ")
    );
}

/// Explore `model` under `cfg`, panicking on the first schedule that
/// fails (assertion, deadlock, or livelock) with its decision trace.
pub fn explore<F>(cfg: Config, model: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let model = Arc::new(model);
    let mut report = Report {
        schedules: 0,
        complete: false,
        max_depth: 0,
    };
    let mut prefix: Vec<usize> = Vec::new();
    // Depth-first sweep.
    loop {
        if report.schedules >= cfg.max_schedules {
            break;
        }
        let (outcome, choices) = run_once(&cfg, &model, &prefix, None);
        report.schedules += 1;
        report.max_depth = report.max_depth.max(choices.len());
        check(outcome, &choices, report.schedules);
        // Backtrack: find the deepest decision with an untried sibling.
        let mut next: Option<Vec<usize>> = None;
        for (depth, &(rank, count)) in choices.iter().enumerate().rev() {
            if rank + 1 < count {
                let mut p: Vec<usize> = choices[..depth].iter().map(|&(r, _)| r).collect();
                p.push(rank + 1);
                next = Some(p);
                break;
            }
        }
        match next {
            Some(p) => prefix = p,
            None => {
                report.complete = true;
                return report;
            }
        }
    }
    // Random tail beyond the DFS budget.
    for i in 0..cfg.random_tail {
        let seed = splitmix64(cfg.seed ^ (i as u64 + 1));
        let (outcome, choices) = run_once(&cfg, &model, &[], Some(seed));
        report.schedules += 1;
        report.max_depth = report.max_depth.max(choices.len());
        check(outcome, &choices, report.schedules);
    }
    report
}

fn check(outcome: ExecOutcome, choices: &[(usize, usize)], schedule_no: usize) {
    match outcome {
        ExecOutcome::Done => {}
        ExecOutcome::Panic(msg) => fail("model assertion failed", &msg, choices, schedule_no),
        ExecOutcome::Deadlock(stuck) => {
            let detail: Vec<String> = stuck
                .iter()
                .map(|(id, state)| format!("thread {id} {state}"))
                .collect();
            fail(
                "deadlock (possible lost wakeup)",
                &detail.join(", "),
                choices,
                schedule_no,
            );
        }
        ExecOutcome::Livelock => fail("livelock: step bound exceeded", "", choices, schedule_no),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_model_explores_one_schedule() {
        let report = explore(Config::default(), || {
            let m = Mutex::new(1);
            let mut g = m.lock();
            *g += 1;
            drop(g);
            assert_eq!(*m.lock(), 2);
        });
        assert!(report.complete);
        assert_eq!(report.schedules, 1);
    }

    #[test]
    fn two_racing_increments_are_fully_explored() {
        let report = explore(Config::default(), || {
            let total = Arc::new(Mutex::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let total = Arc::clone(&total);
                    spawn(move || {
                        let mut g = total.lock();
                        *g += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(*total.lock(), 2);
        });
        assert!(report.complete, "small model must exhaust its tree");
        assert!(report.schedules > 1, "a race has multiple interleavings");
    }

    #[test]
    fn atomic_counter_is_exact_under_all_schedules() {
        let report = explore(Config::default(), || {
            let c = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let c = Arc::clone(&c);
                    spawn(move || {
                        c.fetch_add(1);
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(c.load(), 3);
        });
        assert!(report.schedules > 10);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn wait_without_notifier_is_reported_as_deadlock() {
        explore(Config::default(), || {
            let m = Arc::new(Mutex::new(false));
            let cv = Arc::new(Condvar::new());
            let mut g = m.lock();
            while !*g {
                g = cv.wait(g); // nobody will ever notify
            }
        });
    }

    #[test]
    #[should_panic(expected = "model assertion failed")]
    fn racy_read_modify_write_is_caught() {
        // A classic lost update: load, yield, store — some schedule
        // interleaves the two threads between load and store.
        explore(Config::default(), || {
            let c = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&c);
                    spawn(move || {
                        let v = c.load();
                        c.store(v + 1);
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(c.load(), 2, "non-atomic increment lost an update");
        });
    }

    #[test]
    fn notify_all_wakes_every_waiter() {
        let report = explore(Config::default(), || {
            let state = Arc::new(Mutex::new(false));
            let cv = Arc::new(Condvar::new());
            let waiters: Vec<_> = (0..2)
                .map(|_| {
                    let state = Arc::clone(&state);
                    let cv = Arc::clone(&cv);
                    spawn(move || {
                        let mut g = state.lock();
                        while !*g {
                            g = cv.wait(g);
                        }
                    })
                })
                .collect();
            {
                let state = Arc::clone(&state);
                let cv = Arc::clone(&cv);
                spawn(move || {
                    let mut g = state.lock();
                    *g = true;
                    drop(g);
                    cv.notify_all();
                })
                .join();
            }
            for w in waiters {
                w.join();
            }
        });
        assert!(report.schedules > 1);
    }

    #[test]
    fn budget_caps_dfs_and_random_tail_extends_it() {
        let cfg = Config {
            max_schedules: 5,
            random_tail: 3,
            ..Config::default()
        };
        let report = explore(cfg, || {
            let c = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let c = Arc::clone(&c);
                    spawn(move || {
                        c.fetch_add(1);
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
        });
        assert!(!report.complete);
        assert_eq!(report.schedules, 5 + 3);
    }
}

//! Offline stand-in for the `rayon` crate.
//!
//! Provides the subset of rayon's parallel-iterator API this workspace
//! uses (`par_iter`, `par_iter_mut`, `par_chunks_mut`, `into_par_iter`,
//! `with_min_len`, `enumerate`, `zip`, `map`, `for_each`, `collect`,
//! `ThreadPoolBuilder::install`, `current_num_threads`), executed by
//! splitting the materialized item list into contiguous batches run on
//! `std::thread::scope` workers. Every call site in this workspace only
//! parallelizes over independent elements, so batch execution is
//! observationally identical to rayon's work stealing — including bitwise
//! determinism of the results.

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::cell::Cell;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of worker threads the current scope would use.
pub fn current_num_threads() -> usize {
    POOL_THREADS.with(|t| match t.get() {
        Some(n) => n,
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    })
}

/// Run `items` through `f`, split into one contiguous batch per worker.
fn parallel_for_each<T, F>(items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    let workers = current_num_threads().max(1);
    if workers == 1 || items.len() <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let per = items.len().div_ceil(workers);
    let mut batches: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut it = items.into_iter();
    loop {
        let batch: Vec<T> = it.by_ref().take(per).collect();
        if batch.is_empty() {
            break;
        }
        batches.push(batch);
    }
    let f = &f;
    std::thread::scope(|s| {
        for batch in batches {
            s.spawn(move || {
                for item in batch {
                    f(item);
                }
            });
        }
    });
}

/// Map `items` through `f` in parallel, preserving order.
fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = current_num_threads().max(1);
    if workers == 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let per = items.len().div_ceil(workers);
    let mut batches: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut it = items.into_iter();
    loop {
        let batch: Vec<T> = it.by_ref().take(per).collect();
        if batch.is_empty() {
            break;
        }
        batches.push(batch);
    }
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = batches
            .into_iter()
            .map(|batch| s.spawn(move || batch.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        // Batches are contiguous and handles are joined in spawn order, so
        // concatenation preserves the original item order.
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon-stub worker panicked"))
            .collect()
    })
}

/// A "parallel" iterator: a plain iterator whose consuming adapters run on
/// worker threads.
pub struct Par<I: Iterator> {
    inner: I,
}

impl<I: Iterator> Par<I> {
    /// Minimum splitting granularity — accepted for API compatibility; the
    /// batch executor always uses one contiguous batch per worker.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Pair every item with its index.
    pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
        Par {
            inner: self.inner.enumerate(),
        }
    }

    /// Zip with another parallel iterator.
    pub fn zip<Z: IntoParallelIterator>(self, other: Z) -> Par<std::iter::Zip<I, Z::Iter>> {
        Par {
            inner: self.inner.zip(other.into_par_iter().inner),
        }
    }

    /// Lazily map every item (the closure runs on the workers).
    pub fn map<R, F: Fn(I::Item) -> R>(self, f: F) -> ParMap<I, F> {
        ParMap {
            inner: self.inner,
            f,
        }
    }

    /// Consume the iterator on the worker threads.
    pub fn for_each<F>(self, f: F)
    where
        I::Item: Send,
        F: Fn(I::Item) + Sync,
    {
        parallel_for_each(self.inner.collect(), f);
    }
}

impl<I: Iterator> IntoIterator for Par<I> {
    type Item = I::Item;
    type IntoIter = I;
    fn into_iter(self) -> I {
        self.inner
    }
}

/// A mapped parallel iterator: items are materialized sequentially, the
/// mapping closure runs on the workers.
pub struct ParMap<I: Iterator, F> {
    inner: I,
    f: F,
}

impl<I: Iterator, R, F: Fn(I::Item) -> R> ParMap<I, F> {
    /// Consume the mapped iterator on the worker threads.
    pub fn for_each<G>(self, g: G)
    where
        I::Item: Send,
        R: Send,
        F: Sync,
        G: Fn(R) + Sync,
    {
        let f = self.f;
        parallel_for_each(self.inner.collect(), move |item| g(f(item)));
    }

    /// Collect the mapped results, preserving input order.
    pub fn collect<C>(self) -> C
    where
        I::Item: Send,
        R: Send,
        F: Sync,
        C: From<Vec<R>>,
    {
        parallel_map(self.inner.collect(), self.f).into()
    }
}

/// Conversion into a parallel iterator (by value).
pub trait IntoParallelIterator {
    /// The item type.
    type Item;
    /// The underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Par<Self::Iter>;
}

impl<C: IntoIterator> IntoParallelIterator for C {
    type Item = C::Item;
    type Iter = C::IntoIter;
    fn into_par_iter(self) -> Par<C::IntoIter> {
        Par {
            inner: self.into_iter(),
        }
    }
}

/// `par_iter` — parallel iteration over shared references.
pub trait IntoParallelRefIterator<'a> {
    /// The item type (a shared reference).
    type Item: 'a;
    /// The underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// Iterate over `&self` in parallel.
    fn par_iter(&'a self) -> Par<Self::Iter>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
{
    type Item = <&'a C as IntoIterator>::Item;
    type Iter = <&'a C as IntoIterator>::IntoIter;
    fn par_iter(&'a self) -> Par<Self::Iter> {
        Par {
            inner: self.into_iter(),
        }
    }
}

/// `par_iter_mut` — parallel iteration over exclusive references.
pub trait IntoParallelRefMutIterator<'a> {
    /// The item type (an exclusive reference).
    type Item: 'a;
    /// The underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// Iterate over `&mut self` in parallel.
    fn par_iter_mut(&'a mut self) -> Par<Self::Iter>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: IntoIterator,
{
    type Item = <&'a mut C as IntoIterator>::Item;
    type Iter = <&'a mut C as IntoIterator>::IntoIter;
    fn par_iter_mut(&'a mut self) -> Par<Self::Iter> {
        Par {
            inner: self.into_iter(),
        }
    }
}

/// Parallel chunk iteration over mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Iterate over non-overlapping mutable chunks in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
        assert!(chunk_size > 0, "chunk size must be positive");
        Par {
            inner: self.chunks_mut(chunk_size),
        }
    }
}

/// The prelude, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSliceMut,
    };
}

/// Error building a thread pool (never produced by this stand-in).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a scoped thread-count override.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Set the worker-thread count.
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = Some(n);
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self
                .num_threads
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get())),
        })
    }
}

/// A "thread pool": a scoped override of the worker count used by the
/// batch executor.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's thread count in effect.
    pub fn install<R, F: FnOnce() -> R>(&self, op: F) -> R {
        POOL_THREADS.with(|t| {
            let prev = t.get();
            t.set(Some(self.num_threads));
            let result = op();
            t.set(prev);
            result
        })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_each_covers_all_indices() {
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        (0..1000).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..997usize).into_par_iter().map(|i| i * 3).collect();
        assert_eq!(out, (0..997).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_and_zip_line_up() {
        let mut a = vec![0usize; 64];
        let mut b = vec![0usize; 64];
        a.par_chunks_mut(8)
            .zip(b.par_chunks_mut(8))
            .enumerate()
            .for_each(|(ci, (ca, cb))| {
                for (k, v) in ca.iter_mut().enumerate() {
                    *v = ci * 8 + k;
                }
                cb.copy_from_slice(ca);
            });
        assert_eq!(a, (0..64).collect::<Vec<_>>());
        assert_eq!(a, b);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 2);
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn par_iter_over_vec_refs() {
        let blocks: Vec<usize> = (0..10).collect();
        let out: Vec<usize> = blocks.par_iter().map(|&b| b + 1).collect();
        assert_eq!(out, (1..11).collect::<Vec<_>>());
    }
}

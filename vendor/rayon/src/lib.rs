//! Offline stand-in for the `rayon` crate.
//!
//! Provides the subset of rayon's parallel-iterator API this workspace
//! uses (`par_iter`, `par_iter_mut`, `par_chunks_mut`, `into_par_iter`,
//! `with_min_len`, `enumerate`, `zip`, `map`, `for_each`, `collect`,
//! `ThreadPoolBuilder::install`, `current_num_threads`), executed by
//! splitting the materialized item list into contiguous batches run on a
//! **persistent worker pool**. Every call site in this workspace only
//! parallelizes over independent elements, so batch execution is
//! observationally identical to rayon's work stealing — including bitwise
//! determinism of the results.
//!
//! ## The persistent pool
//!
//! Earlier revisions spawned fresh `std::thread::scope` workers on every
//! dispatch, which put a thread create + join on the critical path of every
//! per-row kernel launch. The pool here is created lazily on the first
//! multi-batch dispatch and lives for the process: dispatches hand batches
//! to the resident workers over a mutex/condvar queue, the calling thread
//! executes batches itself while it waits (so a dispatch can never deadlock
//! on a saturated pool), and a per-dispatch latch provides the join. Batch
//! splitting is unchanged — one contiguous batch per logical worker — so
//! results remain bitwise identical to both the scoped-thread version and
//! plain sequential execution.
//!
//! Worker panics are caught, forwarded to the dispatching thread, and
//! re-raised there; pool threads never die, so the pool cannot shrink under
//! chaos testing.

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Process-wide worker-count override installed by
/// [`set_global_threads`] (`0` = unset).
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Install a process-wide worker-thread count, used whenever no scoped
/// [`ThreadPool::install`] override is active. `0` clears the override.
///
/// Single-hart hosts default to one worker, and one-worker dispatches run
/// inline without touching the pool — so benchmarks that want to exercise
/// (and assert on) multi-worker dispatch and thread reuse call this first
/// to pin a deterministic worker count regardless of host width.
pub fn set_global_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// The number of worker threads the current scope would use: the scoped
/// [`ThreadPool::install`] override, else the process-wide
/// [`set_global_threads`] override, else the host's available parallelism.
pub fn current_num_threads() -> usize {
    POOL_THREADS.with(|t| match t.get() {
        Some(n) => n,
        None => match GLOBAL_THREADS.load(Ordering::Relaxed) {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        },
    })
}

// ---------------------------------------------------------------------------
// Persistent worker pool
// ---------------------------------------------------------------------------

/// A lifetime-erased batch job. Safety: the dispatching call blocks on the
/// job's latch before returning, so every borrow the closure captures
/// outlives its execution (the same argument `std::thread::scope` makes).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Completion latch shared by one dispatch's jobs.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    pending: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Latch {
    fn new(pending: usize) -> Arc<Latch> {
        Arc::new(Latch {
            state: Mutex::new(LatchState {
                pending,
                panic: None,
            }),
            done: Condvar::new(),
        })
    }

    fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut state = self.state.lock().unwrap();
        state.pending -= 1;
        if let Some(p) = panic {
            state.panic.get_or_insert(p);
        }
        if state.pending == 0 {
            self.done.notify_all();
        }
    }

    /// Wait for all jobs, re-raising the first captured panic.
    fn wait(&self) {
        let mut state = self.state.lock().unwrap();
        while state.pending > 0 {
            state = self.done.wait(state).unwrap();
        }
        if let Some(p) = state.panic.take() {
            drop(state);
            std::panic::resume_unwind(p);
        }
    }
}

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
}

/// The process-wide persistent pool.
struct Pool {
    shared: Arc<PoolShared>,
    /// Resident worker threads (spawned lazily, at most once each).
    threads_spawned: AtomicU64,
    /// Multi-batch dispatches handed to the pool.
    dispatches: AtomicU64,
    /// Batches executed by resident pool workers (the rest ran inline on
    /// the dispatching thread).
    pool_batches: AtomicU64,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        shared: Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        }),
        threads_spawned: AtomicU64::new(0),
        dispatches: AtomicU64::new(0),
        pool_batches: AtomicU64::new(0),
    })
}

impl Pool {
    /// Upper bound on resident workers: the host's available parallelism,
    /// or the [`set_global_threads`] override when it asks for more (read
    /// fresh so the override also works after the pool exists).
    fn max_threads(&self) -> usize {
        let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
        avail.max(GLOBAL_THREADS.load(Ordering::Relaxed))
    }

    /// Ensure at least `wanted` resident workers exist (capped at
    /// [`Pool::max_threads`]; the dispatching thread itself covers the
    /// rest).
    fn ensure_threads(&'static self, wanted: usize) {
        let target = wanted.min(self.max_threads()) as u64;
        loop {
            let have = self.threads_spawned.load(Ordering::Relaxed);
            if have >= target {
                return;
            }
            if self
                .threads_spawned
                .compare_exchange(have, have + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name(format!("rayon-stub-{have}"))
                .spawn(move || worker_loop(shared))
                .expect("spawn rayon-stub pool worker");
        }
    }

    /// Run `batches` to completion: queue them for the resident workers and
    /// drain the queue from the calling thread until everything finished.
    fn run_batches(&'static self, batches: Vec<Job>) {
        self.dispatches.fetch_add(1, Ordering::Relaxed);
        self.ensure_threads(batches.len());
        let latch = Latch::new(batches.len());
        {
            let mut queue = self.shared.queue.lock().unwrap();
            for job in batches {
                let latch = Arc::clone(&latch);
                let counted: Job = Box::new(move || {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                    latch.complete(result.err());
                });
                queue.push_back(counted);
            }
        }
        self.shared.available.notify_all();
        // Help out: execute queued jobs (this dispatch's or another's) on
        // the calling thread while waiting. This guarantees progress even
        // when every resident worker is busy with nested dispatches.
        loop {
            let job = self.shared.queue.lock().unwrap().pop_front();
            match job {
                Some(job) => job(),
                None => break,
            }
        }
        latch.wait();
    }
}

fn worker_loop(shared: Arc<PoolShared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared.available.wait(queue).unwrap();
            }
        };
        pool().pool_batches.fetch_add(1, Ordering::Relaxed);
        // The job wrapper catches panics; nothing can unwind through here.
        job();
    }
}

/// A snapshot of the persistent pool's lifetime counters (monotone; take
/// deltas across a region of interest to attribute work to it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Resident worker threads spawned so far (bounded by the host's
    /// available parallelism for the life of the process).
    pub threads_spawned: u64,
    /// Multi-batch dispatches handed to the pool.
    pub dispatches: u64,
    /// Batches executed by resident pool workers. `dispatches` served
    /// after the pool is warm reuse these threads instead of spawning.
    pub pool_batches: u64,
}

impl PoolStats {
    /// Dispatches that reused already-running pool threads (every dispatch
    /// after the ones that grew the pool).
    pub fn thread_reuses(&self) -> u64 {
        self.dispatches.saturating_sub(self.threads_spawned)
    }
}

/// Current persistent-pool counters.
pub fn pool_stats() -> PoolStats {
    // Read through the OnceLock without forcing pool creation.
    match POOL.get() {
        Some(p) => PoolStats {
            threads_spawned: p.threads_spawned.load(Ordering::Relaxed),
            dispatches: p.dispatches.load(Ordering::Relaxed),
            pool_batches: p.pool_batches.load(Ordering::Relaxed),
        },
        None => PoolStats::default(),
    }
}

/// Erase a batch closure's lifetime so it can ride the persistent pool's
/// queue. Safety: [`Pool::run_batches`] blocks on the dispatch latch before
/// returning, so the closure cannot outlive the borrows it captures.
unsafe fn erase_job<'a>(job: Box<dyn FnOnce() + Send + 'a>) -> Job {
    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'a>, Job>(job) }
}

/// Run `items` through `f`, split into one contiguous batch per worker.
fn parallel_for_each<T, F>(items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    let workers = current_num_threads().max(1);
    if workers == 1 || items.len() <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let per = items.len().div_ceil(workers);
    let f = &f;
    let mut batches: Vec<Job> = Vec::with_capacity(workers);
    let mut it = items.into_iter();
    loop {
        let batch: Vec<T> = it.by_ref().take(per).collect();
        if batch.is_empty() {
            break;
        }
        let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            for item in batch {
                f(item);
            }
        });
        // SAFETY: run_batches joins every batch before returning.
        batches.push(unsafe { erase_job(job) });
    }
    pool().run_batches(batches);
}

/// A "parallel" iterator: a plain iterator whose consuming adapters run on
/// worker threads.
pub struct Par<I: Iterator> {
    inner: I,
}

impl<I: Iterator> Par<I> {
    /// Minimum splitting granularity — accepted for API compatibility; the
    /// batch executor always uses one contiguous batch per worker.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Pair every item with its index.
    pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
        Par {
            inner: self.inner.enumerate(),
        }
    }

    /// Zip with another parallel iterator.
    pub fn zip<Z: IntoParallelIterator>(self, other: Z) -> Par<std::iter::Zip<I, Z::Iter>> {
        Par {
            inner: self.inner.zip(other.into_par_iter().inner),
        }
    }

    /// Lazily map every item (the closure runs on the workers).
    pub fn map<R, F: Fn(I::Item) -> R>(self, f: F) -> ParMap<I, F> {
        ParMap {
            inner: self.inner,
            f,
        }
    }

    /// Consume the iterator on the worker threads.
    pub fn for_each<F>(self, f: F)
    where
        I::Item: Send,
        F: Fn(I::Item) + Sync,
    {
        parallel_for_each(self.inner.collect(), f);
    }
}

impl<I: Iterator> IntoIterator for Par<I> {
    type Item = I::Item;
    type IntoIter = I;
    fn into_iter(self) -> I {
        self.inner
    }
}

/// A mapped parallel iterator: items are materialized sequentially, the
/// mapping closure runs on the workers.
pub struct ParMap<I: Iterator, F> {
    inner: I,
    f: F,
}

impl<I: Iterator, R, F: Fn(I::Item) -> R> ParMap<I, F> {
    /// Consume the mapped iterator on the worker threads.
    pub fn for_each<G>(self, g: G)
    where
        I::Item: Send,
        R: Send,
        F: Sync,
        G: Fn(R) + Sync,
    {
        let f = self.f;
        parallel_for_each(self.inner.collect(), move |item| g(f(item)));
    }

    /// Collect the mapped results, preserving input order.
    pub fn collect<C>(self) -> C
    where
        I::Item: Send,
        R: Send,
        F: Sync,
        C: From<Vec<R>>,
    {
        parallel_map_ordered(self.inner.collect(), self.f).into()
    }
}

/// Map `items` through `f` in parallel, preserving order (pool-backed).
fn parallel_map_ordered<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = current_num_threads().max(1);
    if workers == 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let per = items.len().div_ceil(workers);
    let f = &f;
    let mut raw_batches: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut it = items.into_iter();
    loop {
        let batch: Vec<T> = it.by_ref().take(per).collect();
        if batch.is_empty() {
            break;
        }
        raw_batches.push(batch);
    }
    let slots: Vec<Mutex<Vec<R>>> = (0..raw_batches.len())
        .map(|_| Mutex::new(Vec::new()))
        .collect();
    let slots_ref = &slots;
    let jobs: Vec<Job> = raw_batches
        .into_iter()
        .enumerate()
        .map(|(slot, batch)| {
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let mapped: Vec<R> = batch.into_iter().map(f).collect();
                *slots_ref[slot].lock().unwrap() = mapped;
            });
            // SAFETY: run_batches joins every batch before returning.
            unsafe { erase_job(job) }
        })
        .collect();
    pool().run_batches(jobs);
    // Batches are contiguous and slots are drained in batch order, so
    // concatenation preserves the original item order.
    slots
        .into_iter()
        .flat_map(|slot| slot.into_inner().unwrap())
        .collect()
}

/// Conversion into a parallel iterator (by value).
pub trait IntoParallelIterator {
    /// The item type.
    type Item;
    /// The underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Par<Self::Iter>;
}

impl<C: IntoIterator> IntoParallelIterator for C {
    type Item = C::Item;
    type Iter = C::IntoIter;
    fn into_par_iter(self) -> Par<C::IntoIter> {
        Par {
            inner: self.into_iter(),
        }
    }
}

/// `par_iter` — parallel iteration over shared references.
pub trait IntoParallelRefIterator<'a> {
    /// The item type (a shared reference).
    type Item: 'a;
    /// The underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// Iterate over `&self` in parallel.
    fn par_iter(&'a self) -> Par<Self::Iter>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
{
    type Item = <&'a C as IntoIterator>::Item;
    type Iter = <&'a C as IntoIterator>::IntoIter;
    fn par_iter(&'a self) -> Par<Self::Iter> {
        Par {
            inner: self.into_iter(),
        }
    }
}

/// `par_iter_mut` — parallel iteration over exclusive references.
pub trait IntoParallelRefMutIterator<'a> {
    /// The item type (an exclusive reference).
    type Item: 'a;
    /// The underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// Iterate over `&mut self` in parallel.
    fn par_iter_mut(&'a mut self) -> Par<Self::Iter>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: IntoIterator,
{
    type Item = <&'a mut C as IntoIterator>::Item;
    type Iter = <&'a mut C as IntoIterator>::IntoIter;
    fn par_iter_mut(&'a mut self) -> Par<Self::Iter> {
        Par {
            inner: self.into_iter(),
        }
    }
}

/// Parallel chunk iteration over mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Iterate over non-overlapping mutable chunks in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
        assert!(chunk_size > 0, "chunk size must be positive");
        Par {
            inner: self.chunks_mut(chunk_size),
        }
    }
}

/// The prelude, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSliceMut,
    };
}

/// Error building a thread pool (never produced by this stand-in).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a scoped thread-count override.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Set the worker-thread count.
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = Some(n);
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self
                .num_threads
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get())),
        })
    }
}

/// A "thread pool": a scoped override of the worker count used by the
/// batch executor (batches land on the shared persistent pool).
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's thread count in effect.
    pub fn install<R, F: FnOnce() -> R>(&self, op: F) -> R {
        POOL_THREADS.with(|t| {
            let prev = t.get();
            t.set(Some(self.num_threads));
            let result = op();
            t.set(prev);
            result
        })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_each_covers_all_indices() {
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        (0..1000).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..997usize).into_par_iter().map(|i| i * 3).collect();
        assert_eq!(out, (0..997).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_and_zip_line_up() {
        let mut a = vec![0usize; 64];
        let mut b = vec![0usize; 64];
        a.par_chunks_mut(8)
            .zip(b.par_chunks_mut(8))
            .enumerate()
            .for_each(|(ci, (ca, cb))| {
                for (k, v) in ca.iter_mut().enumerate() {
                    *v = ci * 8 + k;
                }
                cb.copy_from_slice(ca);
            });
        assert_eq!(a, (0..64).collect::<Vec<_>>());
        assert_eq!(a, b);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 2);
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn par_iter_over_vec_refs() {
        let blocks: Vec<usize> = (0..10).collect();
        let out: Vec<usize> = blocks.par_iter().map(|&b| b + 1).collect();
        assert_eq!(out, (1..11).collect::<Vec<_>>());
    }

    #[test]
    fn pool_persists_across_dispatches() {
        let pool4 = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool4.install(|| {
            (0..64).into_par_iter().for_each(|_| {});
        });
        let before = pool_stats();
        pool4.install(|| {
            for _ in 0..8 {
                (0..64).into_par_iter().for_each(|_| {});
            }
        });
        let after = pool_stats();
        assert_eq!(
            after.threads_spawned, before.threads_spawned,
            "warm dispatches must not spawn threads"
        );
        assert!(after.dispatches >= before.dispatches + 8);
    }

    #[test]
    fn global_thread_override_enables_reuse_on_narrow_hosts() {
        // Pin 3 workers process-wide (as the scaling benchmark does on
        // small CI hosts) and check that warm dispatches are counted as
        // thread reuses even if the host itself has one hart.
        set_global_threads(3);
        assert_eq!(current_num_threads(), 3);
        let before = pool_stats();
        for _ in 0..4 {
            (0..64).into_par_iter().for_each(|_| {});
        }
        let after = pool_stats();
        set_global_threads(0);
        assert!(after.dispatches >= before.dispatches + 4);
        assert!(
            after.thread_reuses() > before.thread_reuses(),
            "warm multi-worker dispatches must register as reuses"
        );
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool2 = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let caught = std::panic::catch_unwind(|| {
            pool2.install(|| {
                (0..16).into_par_iter().for_each(|i| {
                    assert!(i != 7, "injected batch panic");
                });
            });
        });
        std::panic::set_hook(prev_hook);
        assert!(caught.is_err(), "batch panic must reach the dispatcher");
        // The pool still works after the panic.
        let hits = AtomicUsize::new(0);
        pool2.install(|| {
            (0..32).into_par_iter().for_each(|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn nested_dispatches_complete() {
        let pool2 = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let hits = AtomicUsize::new(0);
        pool2.install(|| {
            (0..4).into_par_iter().for_each(|_| {
                (0..4).into_par_iter().for_each(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }
}

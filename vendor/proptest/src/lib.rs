//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//! attribute, `any::<T>()`, numeric range strategies, [`Just`],
//! [`prop_oneof!`], `prop::collection::vec`, `prop::option::of`, tuple
//! strategies with [`Strategy::prop_map`], and the `prop_assert*` macros.
//! Cases are generated from a deterministic per-test stream; there is no
//! shrinking — a failure reports the failing inputs via the assertion
//! message instead.

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
    rejected: bool,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail<S: Into<String>>(msg: S) -> TestCaseError {
        TestCaseError {
            message: msg.into(),
            rejected: false,
        }
    }

    /// A rejected case (`prop_assume!` not satisfied) — skipped, not failed.
    pub fn reject<S: Into<String>>(msg: S) -> TestCaseError {
        TestCaseError {
            message: msg.into(),
            rejected: true,
        }
    }

    /// Whether this is a rejection rather than a failure.
    pub fn is_rejection(&self) -> bool {
        self.rejected
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic generator driving value strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded by `seed`.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick from an empty set");
        (self.next_u64() % n as u64) as usize
    }
}

/// A value-generation strategy.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f` (mirrors proptest's
    /// `Strategy::prop_map`; no shrinking, so this is a plain map).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                self.start() + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types `any::<T>()` can generate: raw random bits reinterpreted, so float
/// strategies cover NaNs, infinities and subnormals.
pub trait ArbitraryBits {
    /// Generate one arbitrary value.
    fn from_bits_of(rng: &mut TestRng) -> Self;
}

impl ArbitraryBits for f64 {
    fn from_bits_of(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl ArbitraryBits for f32 {
    fn from_bits_of(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryBits for $t {
            fn from_bits_of(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryBits for bool {
    fn from_bits_of(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Any representable value of `T` (via raw bits for floats).
pub fn any<T: ArbitraryBits>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: ArbitraryBits> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::from_bits_of(rng)
    }
}

/// A weighted-free union of boxed strategies ([`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union picking uniformly among `options`.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.index(self.options.len());
        self.options[pick].generate(rng)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A size range for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// A strategy for `Vec<S::Value>` with a size drawn from a range.
    pub struct VecStrategy<S: Strategy> {
        element: S,
        size: SizeRange,
    }

    /// `Vec`s of values from `element` with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + rng.index(span.max(1)).min(span - 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Optional-value strategies, mirroring `proptest::option`.
pub mod option {
    use crate::{Strategy, TestRng};

    /// The strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` of the inner strategy's value, or `None` (about 1 in 4).
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy { inner: element }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.index(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Namespaced re-exports, mirroring `proptest::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

/// Run one property test: `cases` deterministic cases through `body`.
///
/// The driver behind the [`proptest!`] macro — not called directly.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // Seed per test name so distinct tests explore distinct streams.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for case in 0..config.cases {
        let mut rng = TestRng::new(seed ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if let Err(e) = body(&mut rng) {
            if e.is_rejection() {
                continue;
            }
            panic!(
                "proptest case {case}/{} of '{name}' failed: {e}",
                config.cases
            );
        }
    }
}

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Define property tests: an optional `#![proptest_config(..)]` followed by
/// `#[test] fn name(binding in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — not called directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($p:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_proptest(&config, stringify!($name), |__proptest_rng| {
                    $(let $p = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Skip the case when an assumption about the generated inputs does not
/// hold (the case is not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Assert a condition inside a property test, failing the case (not
/// panicking) so the driver can report the failing inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        // `match` rather than `if !(..)` so clippy's
        // neg_cmp_op_on_partial_ord never fires on caller comparisons.
        match $cond {
            true => {}
            false => {
                return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                    $($fmt)+
                )));
            }
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), left, right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a), stringify!($b), left
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left != right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// A uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(::std::boxed::Box::new($strat)),+];
        $crate::Union::new(options)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn helper(x: f64) -> Result<(), TestCaseError> {
        prop_assert!(x >= -1.0e4, "x too small: {x}");
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_are_bounded(x in -5.0..5.0_f64, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        /// Doc comments parse too.
        #[test]
        fn oneof_and_just(x in prop_oneof![-1.0..1.0_f64, Just(0.0), Just(2.5)]) {
            prop_assert!(x == 2.5 || (-1.0..=1.0).contains(&x));
            helper(x)?;
        }

        #[test]
        fn vectors_have_sizes(mut xs in prop::collection::vec(0.0..1.0_f64, 3..=7)) {
            prop_assert!(xs.len() >= 3 && xs.len() <= 7);
            xs.push(0.5);
            prop_assert_ne!(xs.len(), 0);
        }

        #[test]
        fn any_generates_all_bit_patterns_eventually(x in any::<u16>()) {
            prop_assert_eq!(u32::from(x) & 0xffff, u32::from(x));
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_case_reports() {
        crate::run_proptest(&ProptestConfig::with_cases(8), "always_fails", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }
}

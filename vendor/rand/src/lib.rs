//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset of the rand 0.8 API the workspace uses — [`Rng`],
//! [`SeedableRng`], [`rngs::StdRng`] and [`seq::SliceRandom`] — backed by a
//! deterministic xoshiro256\*\* generator. Streams differ from upstream
//! rand's, but every generator in this workspace is seeded and only
//! determinism (not a particular stream) is relied upon.

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s (the subset of `rand_core::RngCore` we need).
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A value that can be drawn uniformly from a generator (the role of
/// `Standard: Distribution<T>` in upstream rand).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range a value can be drawn uniformly from (the role of
/// `SampleRange<T>` in upstream rand).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_sample_range_sint!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// User-facing generator methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value (`[0, 1)` for floats, full range for
    /// integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256\*\* seeded via
    /// SplitMix64 (not the same stream as upstream rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (the subset of upstream's `SliceRandom` we use).
    pub trait SliceRandom {
        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5.0..5.0f64);
            assert!((-5.0..5.0).contains(&y));
            let z = rng.gen_range(2..=32usize);
            assert!((2..=32).contains(&z));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
